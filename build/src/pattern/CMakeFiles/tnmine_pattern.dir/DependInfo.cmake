
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pattern/dot.cc" "src/pattern/CMakeFiles/tnmine_pattern.dir/dot.cc.o" "gcc" "src/pattern/CMakeFiles/tnmine_pattern.dir/dot.cc.o.d"
  "/root/repo/src/pattern/pattern.cc" "src/pattern/CMakeFiles/tnmine_pattern.dir/pattern.cc.o" "gcc" "src/pattern/CMakeFiles/tnmine_pattern.dir/pattern.cc.o.d"
  "/root/repo/src/pattern/render.cc" "src/pattern/CMakeFiles/tnmine_pattern.dir/render.cc.o" "gcc" "src/pattern/CMakeFiles/tnmine_pattern.dir/render.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iso/CMakeFiles/tnmine_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tnmine_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tnmine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
