file(REMOVE_RECURSE
  "libtnmine_pattern.a"
)
