# Empty dependencies file for tnmine_gspan.
# This may be replaced when dependencies are built.
