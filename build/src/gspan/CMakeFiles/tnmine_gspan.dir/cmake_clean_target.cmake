file(REMOVE_RECURSE
  "libtnmine_gspan.a"
)
