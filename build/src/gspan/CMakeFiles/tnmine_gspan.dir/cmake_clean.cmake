file(REMOVE_RECURSE
  "CMakeFiles/tnmine_gspan.dir/dfs_code.cc.o"
  "CMakeFiles/tnmine_gspan.dir/dfs_code.cc.o.d"
  "CMakeFiles/tnmine_gspan.dir/gspan.cc.o"
  "CMakeFiles/tnmine_gspan.dir/gspan.cc.o.d"
  "libtnmine_gspan.a"
  "libtnmine_gspan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_gspan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
