# Empty dependencies file for tnmine_subdue.
# This may be replaced when dependencies are built.
