file(REMOVE_RECURSE
  "libtnmine_subdue.a"
)
