file(REMOVE_RECURSE
  "CMakeFiles/tnmine_subdue.dir/mdl.cc.o"
  "CMakeFiles/tnmine_subdue.dir/mdl.cc.o.d"
  "CMakeFiles/tnmine_subdue.dir/subdue.cc.o"
  "CMakeFiles/tnmine_subdue.dir/subdue.cc.o.d"
  "libtnmine_subdue.a"
  "libtnmine_subdue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_subdue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
