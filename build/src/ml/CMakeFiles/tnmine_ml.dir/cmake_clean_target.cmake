file(REMOVE_RECURSE
  "libtnmine_ml.a"
)
