file(REMOVE_RECURSE
  "CMakeFiles/tnmine_ml.dir/apriori.cc.o"
  "CMakeFiles/tnmine_ml.dir/apriori.cc.o.d"
  "CMakeFiles/tnmine_ml.dir/arff.cc.o"
  "CMakeFiles/tnmine_ml.dir/arff.cc.o.d"
  "CMakeFiles/tnmine_ml.dir/attribute_table.cc.o"
  "CMakeFiles/tnmine_ml.dir/attribute_table.cc.o.d"
  "CMakeFiles/tnmine_ml.dir/decision_tree.cc.o"
  "CMakeFiles/tnmine_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/tnmine_ml.dir/em.cc.o"
  "CMakeFiles/tnmine_ml.dir/em.cc.o.d"
  "CMakeFiles/tnmine_ml.dir/kmeans.cc.o"
  "CMakeFiles/tnmine_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/tnmine_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/tnmine_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/tnmine_ml.dir/validation.cc.o"
  "CMakeFiles/tnmine_ml.dir/validation.cc.o.d"
  "libtnmine_ml.a"
  "libtnmine_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
