
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/apriori.cc" "src/ml/CMakeFiles/tnmine_ml.dir/apriori.cc.o" "gcc" "src/ml/CMakeFiles/tnmine_ml.dir/apriori.cc.o.d"
  "/root/repo/src/ml/arff.cc" "src/ml/CMakeFiles/tnmine_ml.dir/arff.cc.o" "gcc" "src/ml/CMakeFiles/tnmine_ml.dir/arff.cc.o.d"
  "/root/repo/src/ml/attribute_table.cc" "src/ml/CMakeFiles/tnmine_ml.dir/attribute_table.cc.o" "gcc" "src/ml/CMakeFiles/tnmine_ml.dir/attribute_table.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/tnmine_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/tnmine_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/em.cc" "src/ml/CMakeFiles/tnmine_ml.dir/em.cc.o" "gcc" "src/ml/CMakeFiles/tnmine_ml.dir/em.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/tnmine_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/tnmine_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/ml/CMakeFiles/tnmine_ml.dir/naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/tnmine_ml.dir/naive_bayes.cc.o.d"
  "/root/repo/src/ml/validation.cc" "src/ml/CMakeFiles/tnmine_ml.dir/validation.cc.o" "gcc" "src/ml/CMakeFiles/tnmine_ml.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/tnmine_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tnmine_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tnmine_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
