# Empty compiler generated dependencies file for tnmine_ml.
# This may be replaced when dependencies are built.
