file(REMOVE_RECURSE
  "CMakeFiles/tnmine_common.dir/binning.cc.o"
  "CMakeFiles/tnmine_common.dir/binning.cc.o.d"
  "CMakeFiles/tnmine_common.dir/csv.cc.o"
  "CMakeFiles/tnmine_common.dir/csv.cc.o.d"
  "CMakeFiles/tnmine_common.dir/date.cc.o"
  "CMakeFiles/tnmine_common.dir/date.cc.o.d"
  "CMakeFiles/tnmine_common.dir/random.cc.o"
  "CMakeFiles/tnmine_common.dir/random.cc.o.d"
  "CMakeFiles/tnmine_common.dir/statistics.cc.o"
  "CMakeFiles/tnmine_common.dir/statistics.cc.o.d"
  "libtnmine_common.a"
  "libtnmine_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
