# Empty compiler generated dependencies file for tnmine_common.
# This may be replaced when dependencies are built.
