file(REMOVE_RECURSE
  "libtnmine_common.a"
)
