# Empty dependencies file for tnmine_cli.
# This may be replaced when dependencies are built.
