file(REMOVE_RECURSE
  "CMakeFiles/tnmine_cli.dir/tnmine_cli.cc.o"
  "CMakeFiles/tnmine_cli.dir/tnmine_cli.cc.o.d"
  "tnmine_cli"
  "tnmine_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnmine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
