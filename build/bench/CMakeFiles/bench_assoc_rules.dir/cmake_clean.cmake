file(REMOVE_RECURSE
  "CMakeFiles/bench_assoc_rules.dir/bench_assoc_rules.cc.o"
  "CMakeFiles/bench_assoc_rules.dir/bench_assoc_rules.cc.o.d"
  "bench_assoc_rules"
  "bench_assoc_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assoc_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
