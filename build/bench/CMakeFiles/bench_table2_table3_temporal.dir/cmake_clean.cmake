file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_table3_temporal.dir/bench_table2_table3_temporal.cc.o"
  "CMakeFiles/bench_table2_table3_temporal.dir/bench_table2_table3_temporal.cc.o.d"
  "bench_table2_table3_temporal"
  "bench_table2_table3_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_table3_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
