# Empty compiler generated dependencies file for bench_table2_table3_temporal.
# This may be replaced when dependencies are built.
