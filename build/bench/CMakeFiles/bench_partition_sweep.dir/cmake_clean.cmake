file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_sweep.dir/bench_partition_sweep.cc.o"
  "CMakeFiles/bench_partition_sweep.dir/bench_partition_sweep.cc.o.d"
  "bench_partition_sweep"
  "bench_partition_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
