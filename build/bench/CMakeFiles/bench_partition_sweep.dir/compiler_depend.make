# Empty compiler generated dependencies file for bench_partition_sweep.
# This may be replaced when dependencies are built.
