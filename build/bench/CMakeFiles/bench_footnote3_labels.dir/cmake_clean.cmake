file(REMOVE_RECURSE
  "CMakeFiles/bench_footnote3_labels.dir/bench_footnote3_labels.cc.o"
  "CMakeFiles/bench_footnote3_labels.dir/bench_footnote3_labels.cc.o.d"
  "bench_footnote3_labels"
  "bench_footnote3_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_footnote3_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
