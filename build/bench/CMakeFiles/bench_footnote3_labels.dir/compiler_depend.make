# Empty compiler generated dependencies file for bench_footnote3_labels.
# This may be replaced when dependencies are built.
