# Empty dependencies file for bench_ablation_gspan.
# This may be replaced when dependencies are built.
