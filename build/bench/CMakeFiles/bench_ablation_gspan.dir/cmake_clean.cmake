file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gspan.dir/bench_ablation_gspan.cc.o"
  "CMakeFiles/bench_ablation_gspan.dir/bench_ablation_gspan.cc.o.d"
  "bench_ablation_gspan"
  "bench_ablation_gspan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gspan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
