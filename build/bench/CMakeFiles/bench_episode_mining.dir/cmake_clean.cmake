file(REMOVE_RECURSE
  "CMakeFiles/bench_episode_mining.dir/bench_episode_mining.cc.o"
  "CMakeFiles/bench_episode_mining.dir/bench_episode_mining.cc.o.d"
  "bench_episode_mining"
  "bench_episode_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_episode_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
