# Empty compiler generated dependencies file for bench_episode_mining.
# This may be replaced when dependencies are built.
