file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_subdue_mdl.dir/bench_fig1_subdue_mdl.cc.o"
  "CMakeFiles/bench_fig1_subdue_mdl.dir/bench_fig1_subdue_mdl.cc.o.d"
  "bench_fig1_subdue_mdl"
  "bench_fig1_subdue_mdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_subdue_mdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
