# Empty compiler generated dependencies file for bench_fig1_subdue_mdl.
# This may be replaced when dependencies are built.
