file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_fig3_fsg_structural.dir/bench_fig2_fig3_fsg_structural.cc.o"
  "CMakeFiles/bench_fig2_fig3_fsg_structural.dir/bench_fig2_fig3_fsg_structural.cc.o.d"
  "bench_fig2_fig3_fsg_structural"
  "bench_fig2_fig3_fsg_structural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_fig3_fsg_structural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
