# Empty dependencies file for bench_fig2_fig3_fsg_structural.
# This may be replaced when dependencies are built.
