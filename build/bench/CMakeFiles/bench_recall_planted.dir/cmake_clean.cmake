file(REMOVE_RECURSE
  "CMakeFiles/bench_recall_planted.dir/bench_recall_planted.cc.o"
  "CMakeFiles/bench_recall_planted.dir/bench_recall_planted.cc.o.d"
  "bench_recall_planted"
  "bench_recall_planted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recall_planted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
