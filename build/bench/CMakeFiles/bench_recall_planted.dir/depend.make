# Empty dependencies file for bench_recall_planted.
# This may be replaced when dependencies are built.
