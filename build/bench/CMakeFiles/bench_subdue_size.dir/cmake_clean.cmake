file(REMOVE_RECURSE
  "CMakeFiles/bench_subdue_size.dir/bench_subdue_size.cc.o"
  "CMakeFiles/bench_subdue_size.dir/bench_subdue_size.cc.o.d"
  "bench_subdue_size"
  "bench_subdue_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subdue_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
