# Empty dependencies file for bench_subdue_size.
# This may be replaced when dependencies are built.
