file(REMOVE_RECURSE
  "CMakeFiles/bench_subdue_scaling.dir/bench_subdue_scaling.cc.o"
  "CMakeFiles/bench_subdue_scaling.dir/bench_subdue_scaling.cc.o.d"
  "bench_subdue_scaling"
  "bench_subdue_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subdue_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
