# Empty dependencies file for bench_fig5_fig6_clustering.
# This may be replaced when dependencies are built.
