# Empty compiler generated dependencies file for bench_fig4_temporal_fsg.
# This may be replaced when dependencies are built.
