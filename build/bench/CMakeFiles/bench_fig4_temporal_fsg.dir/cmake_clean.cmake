file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_temporal_fsg.dir/bench_fig4_temporal_fsg.cc.o"
  "CMakeFiles/bench_fig4_temporal_fsg.dir/bench_fig4_temporal_fsg.cc.o.d"
  "bench_fig4_temporal_fsg"
  "bench_fig4_temporal_fsg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_temporal_fsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
