// Experiment E7 — Section 5.2.2: partition-size sweep.
//
// The paper tried partition counts 400, 800, 1200 and 1600 with both
// strategies and observed "the smaller number of partitions actually gave
// a larger number of frequent itemsets... these produced larger graphs
// with more potential for overlap". Reproduction target: the frequent-
// pattern count decreases as the partition count increases, for both
// strategies.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/miner.h"
#include "data/od_graph.h"

using namespace tnmine;

int main() {
  bench::Section("E7: frequent patterns vs. partition count (k)");
  const data::OdGraph od_th = data::BuildOdTh(bench::PaperDataset());
  const data::OdGraph od_td = data::BuildOdTd(bench::PaperDataset());

  std::printf("%-14s %-6s %-9s %-11s %-10s %-9s\n", "strategy", "k",
              "support", "partitions", "patterns", "seconds");
  for (const auto strategy : {partition::SplitStrategy::kBreadthFirst,
                              partition::SplitStrategy::kDepthFirst}) {
    const bool bf = strategy == partition::SplitStrategy::kBreadthFirst;
    for (std::size_t k : {400u, 800u, 1200u, 1600u}) {
      core::StructuralMiningOptions options;
      options.strategy = strategy;
      options.num_partitions = k;
      // The paper's supports: 240 for breadth-first, 120 for depth-first.
      options.min_support = bf ? 240 : 120;
      options.max_pattern_edges = 3;
      options.repetitions = 1;
      options.seed = 42;
      const auto& graph = bf ? od_th.graph : od_td.graph;
      Stopwatch sw;
      const auto result = core::MineStructuralPatterns(graph, options);
      std::printf("%-14s %-6zu %-9zu %-11zu %-10zu %-9.2f\n",
                  bf ? "breadth-first" : "depth-first", k,
                  options.min_support,
                  result.partitions_per_repetition[0],
                  result.registry.size(), sw.ElapsedSeconds());
    }
  }
  std::printf(
      "\nExpected shape (paper): pattern counts fall as k rises, for both "
      "strategies.\n");
  return 0;
}
