// Experiment E7 — Section 5.2.2: partition-size sweep.
//
// The paper tried partition counts 400, 800, 1200 and 1600 with both
// strategies and observed "the smaller number of partitions actually gave
// a larger number of frequent itemsets... these produced larger graphs
// with more potential for overlap". Reproduction target: the frequent-
// pattern count decreases as the partition count increases, for both
// strategies.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/miner.h"
#include "data/od_graph.h"

using namespace tnmine;

int main() {
  bench::RunReportScope report("bench_partition_sweep");
  bench::Section("E7: frequent patterns vs. partition count (k)");
  const data::OdGraph od_th = data::BuildOdTh(bench::PaperDataset());
  const data::OdGraph od_td = data::BuildOdTd(bench::PaperDataset());

  // The sweep's (strategy, k) cells are independent miner invocations —
  // run them on parallel lanes, then print in order.
  struct Cell {
    partition::SplitStrategy strategy;
    std::size_t k;
  };
  std::vector<Cell> cells;
  for (const auto strategy : {partition::SplitStrategy::kBreadthFirst,
                              partition::SplitStrategy::kDepthFirst}) {
    for (std::size_t k : {400u, 800u, 1200u, 1600u}) {
      cells.push_back({strategy, k});
    }
  }

  struct CellResult {
    core::StructuralMiningResult mined;
    std::size_t min_support = 0;
    double seconds = 0;
  };
  const std::vector<CellResult> results =
      common::ParallelMap<CellResult>(
          common::Parallelism{}, cells.size(), [&](std::size_t i) {
            const bool bf =
                cells[i].strategy == partition::SplitStrategy::kBreadthFirst;
            core::StructuralMiningOptions options;
            options.strategy = cells[i].strategy;
            options.num_partitions = cells[i].k;
            // The paper's supports: 240 for breadth-first, 120 for
            // depth-first.
            options.min_support = bf ? 240 : 120;
            options.max_pattern_edges = 3;
            options.repetitions = 1;
            options.seed = 42;
            const auto& graph = bf ? od_th.graph : od_td.graph;
            CellResult cell;
            cell.min_support = options.min_support;
            Stopwatch sw;
            cell.mined = core::MineStructuralPatterns(graph, options);
            cell.seconds = sw.ElapsedSeconds();
            return cell;
          });

  std::printf("%-14s %-6s %-9s %-11s %-10s %-9s\n", "strategy", "k",
              "support", "partitions", "patterns", "seconds");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const bool bf =
        cells[i].strategy == partition::SplitStrategy::kBreadthFirst;
    std::printf("%-14s %-6zu %-9zu %-11zu %-10zu %-9.2f\n",
                bf ? "breadth-first" : "depth-first", cells[i].k,
                results[i].min_support,
                results[i].mined.partitions_per_repetition[0],
                results[i].mined.registry.size(), results[i].seconds);
  }
  std::printf(
      "\nExpected shape (paper): pattern counts fall as k rises, for both "
      "strategies.\n");
  return 0;
}
