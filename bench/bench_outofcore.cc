// Out-of-core sharded mining bench (DESIGN.md §16): proves the miners
// handle a dataset a configurable multiple (default 10x) of the memory
// ceiling while the process's resident set stays bounded, and that the
// sharded path is byte-identical to in-memory mining at every shard cut
// and thread count.
//
// Three phases:
//
//   build   generates a KK synthetic transaction set one shard at a
//           time (chunked seeds, so peak build memory is one shard)
//           until the shard payload reaches --max-memory-mb x
//           --data-multiple megabytes.
//   mine    runs FSG over the shard directory through a
//           ShardedTransactionSource with an LRU of
//           --max-resident-shards and a --max-memory-mb budget, then
//           asserts the peak-RSS delta over the pre-mining baseline is
//           at most --max-memory-mb + --rss-slack-mb. A miner that
//           secretly materialized the whole dataset would blow this by
//           the data multiple.
//   equiv   mines a small set in RAM and through shard files at three
//           shard cuts x threads {1,2,4} (FSG and gSpan) and fails
//           unless every run's (code, support, tids) stream is
//           byte-identical to the in-memory reference.
//
// Emits BENCH_outofcore.json ("seconds" tracked; RSS figures are
// printed and attached to the RunReport, not used as row keys — they
// are machine-dependent) plus RUNREPORT_outofcore.json whose
// shard/shards_loaded + shard/evictions counters the CI outofcore-smoke
// job asserts via check_bench_regression.py --require-counter.
//
// Exit code: nonzero on an RSS violation or an equivalence mismatch.

#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/budget.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "fsg/fsg.h"
#include "graph/shard_store.h"
#include "graph/transaction_source.h"
#include "gspan/gspan.h"
#include "pattern/pattern.h"
#include "synth/kk_generator.h"
#include "tools/flag_parser.h"

using namespace tnmine;

namespace {

/// Lifetime peak resident set, in MB (ru_maxrss is KB on Linux).
std::size_t PeakRssMb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::size_t>(ru.ru_maxrss) / 1024;
}

struct BuildResult {
  std::size_t num_transactions = 0;
  std::size_t num_shards = 0;
  std::uint64_t payload_bytes = 0;
};

/// Generates KK transactions one shard at a time until the accumulated
/// shard payload reaches `target_bytes`. Chunked seeds keep the chunks
/// independent; peak memory is one chunk of LabeledGraphs plus one
/// shard's serialized payload.
bool BuildShards(const std::string& dir, std::size_t shard_size,
                 std::uint64_t target_bytes, BuildResult* out) {
  synth::KkOptions kk;
  kk.avg_transaction_edges = 27.4;
  kk.num_seed_patterns = 10;
  kk.avg_pattern_edges = 4.0;
  // Few labels: single-edge types recur across every chunk, so the big
  // run has genuinely frequent patterns even though each chunk embeds
  // its own seed-pattern pool.
  kk.num_vertex_labels = 6;
  kk.num_edge_labels = 2;
  kk.num_transactions = shard_size;
  while (out->payload_bytes < target_bytes) {
    kk.seed = 2005 + out->num_shards;
    const synth::KkResult batch = synth::GenerateKkTransactions(kk);
    graph::ShardWriter writer(dir + "/" +
                              graph::ShardFileName(out->num_shards));
    for (const graph::LabeledGraph& g : batch.transactions) writer.Add(g);
    std::string error;
    if (!writer.Finish(&error)) {
      std::fprintf(stderr, "shard write failed: %s\n", error.c_str());
      return false;
    }
    out->payload_bytes += writer.payload_bytes();
    out->num_transactions += batch.transactions.size();
    ++out->num_shards;
  }
  return true;
}

/// (code, support, tids) stream of a pattern list — byte-identical runs
/// compare equal, nothing else does.
std::string Flatten(const std::vector<pattern::FrequentPattern>& patterns) {
  std::string out;
  for (const pattern::FrequentPattern& p : patterns) {
    out += p.code;
    out += '|';
    out += std::to_string(p.support);
    out += '|';
    for (const std::uint32_t tid : p.tids.ToVector()) {
      out += std::to_string(tid);
      out += ',';
    }
    out += '\n';
  }
  return out;
}

void RemoveShardDir(const std::string& dir, std::size_t num_shards) {
  for (std::size_t i = 0; i < num_shards; ++i)
    unlink((dir + "/" + graph::ShardFileName(i)).c_str());
  rmdir(dir.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunReportScope report("outofcore");
  bench::JsonRowWriter json("BENCH_outofcore.json");
  const tools::Flags flags(argc, argv, 1);

  const auto ceiling_mb = static_cast<std::uint64_t>(
      std::max(1L, flags.GetInt("max-memory-mb", 8)));
  const auto data_multiple = static_cast<std::uint64_t>(
      std::max(1L, flags.GetInt("data-multiple", 10)));
  const auto shard_size = static_cast<std::size_t>(
      std::max(1L, flags.GetInt("shard-size", 1024)));
  const auto max_resident = static_cast<std::size_t>(
      std::max(1L, flags.GetInt("max-resident-shards", 2)));
  const auto rss_slack_mb = static_cast<std::size_t>(
      std::max(0L, flags.GetInt("rss-slack-mb", 48)));
  const auto threads =
      static_cast<std::size_t>(std::max(0L, flags.GetInt("threads", 2)));

  std::string root = flags.Get("out-dir", "");
  bool cleanup = false;
  if (root.empty()) {
    char tmpl[] = "/tmp/bench-outofcore-XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    root = tmpl;
    cleanup = true;
  } else {
    mkdir(root.c_str(), 0755);
  }

  // --- build ------------------------------------------------------------
  bench::Section("Out-of-core: build " +
                 std::to_string(ceiling_mb * data_multiple) +
                 " MB of shards (ceiling " + std::to_string(ceiling_mb) +
                 " MB)");
  const std::string big_dir = root + "/big";
  mkdir(big_dir.c_str(), 0755);
  Stopwatch build_watch;
  BuildResult built;
  if (!BuildShards(big_dir, shard_size,
                   ceiling_mb * data_multiple << 20, &built)) {
    return 1;
  }
  const double build_seconds = build_watch.ElapsedSeconds();
  bench::Row("transactions", built.num_transactions);
  bench::Row("shards", built.num_shards);
  bench::Row("payload_mb",
             static_cast<std::size_t>(built.payload_bytes >> 20));
  bench::Row("build_seconds", build_seconds);
  json.BeginRow();
  json.Field("bench", "outofcore_build");
  json.Field("shard_size", shard_size);
  json.Field("transactions", built.num_transactions);
  json.Field("shards", built.num_shards);
  json.Field("seconds", build_seconds);
  json.EndRow();

  // --- mine under the ceiling -------------------------------------------
  const std::size_t rss_before_mb = PeakRssMb();
  int rc = 0;
  {
    bench::Section("Out-of-core: FSG over " +
                   std::to_string(built.num_shards) + " shards, " +
                   std::to_string(max_resident) + " resident");
    common::BudgetLimits limits;
    limits.max_memory_bytes = ceiling_mb << 20;
    graph::ShardedTransactionSource::Options source_options;
    source_options.max_resident_shards = max_resident;
    source_options.budget = common::ResourceBudget(limits);
    std::string error;
    const auto source = graph::ShardedTransactionSource::Open(
        big_dir, source_options, &error);
    if (source == nullptr) {
      std::fprintf(stderr, "cannot open %s: %s\n", big_dir.c_str(),
                   error.c_str());
      return 1;
    }
    fsg::FsgOptions options;
    options.min_support = built.num_transactions / 4;
    options.max_edges = 2;
    options.parallelism = common::Parallelism{threads};
    options.budget = source_options.budget;
    Stopwatch watch;
    const fsg::FsgResult result = fsg::MineFsg(*source, options);
    const double mine_seconds = watch.ElapsedSeconds();

    const std::size_t rss_after_mb = PeakRssMb();
    const std::size_t rss_delta_mb = rss_after_mb - rss_before_mb;
    const std::size_t rss_limit_mb =
        static_cast<std::size_t>(ceiling_mb) + rss_slack_mb;
    bench::Row("patterns", result.patterns.size());
    bench::Row("outcome", std::string(common::ToString(result.outcome)));
    bench::Row("mine_seconds", mine_seconds);
    bench::Row("peak_rss_mb", rss_after_mb);
    bench::Row("rss_delta_mb (mining working set)", rss_delta_mb);
    bench::Row("rss_limit_mb (ceiling + slack)", rss_limit_mb);
    report.AddField("rss_delta_mb", std::to_string(rss_delta_mb));
    report.AddField("data_mb",
                    std::to_string(built.payload_bytes >> 20));
    json.BeginRow();
    json.Field("bench", "outofcore_mine");
    json.Field("miner", "fsg");
    json.Field("shard_size", shard_size);
    json.Field("max_resident_shards", max_resident);
    json.Field("transactions", built.num_transactions);
    json.Field("patterns", result.patterns.size());
    json.Field("seconds", mine_seconds);
    json.EndRow();
    if (rss_delta_mb > rss_limit_mb) {
      std::fprintf(stderr,
                   "RSS VIOLATION: mining grew the resident set by %zu "
                   "MB, limit %zu MB (ceiling %llu + slack %zu)\n",
                   rss_delta_mb, rss_limit_mb,
                   static_cast<unsigned long long>(ceiling_mb),
                   rss_slack_mb);
      rc = 1;
    }
    if (result.patterns.empty()) {
      std::fprintf(stderr, "suspicious: big run mined zero patterns\n");
      rc = 1;
    }
  }

  // --- equivalence sweep -------------------------------------------------
  bench::Section(
      "Out-of-core: byte-identity, 3 shard cuts x threads {1,2,4}");
  synth::KkOptions kk;
  kk.num_transactions = 150;
  kk.avg_transaction_edges = 12.0;
  kk.num_seed_patterns = 8;
  kk.avg_pattern_edges = 3.0;
  kk.num_vertex_labels = 10;
  kk.num_edge_labels = 3;
  kk.seed = 7;
  const synth::KkResult small = synth::GenerateKkTransactions(kk);
  fsg::FsgOptions fsg_ref;
  fsg_ref.min_support = 8;
  fsg_ref.max_edges = 3;
  gspan::GspanOptions gspan_ref;
  gspan_ref.min_support = 8;
  gspan_ref.max_edges = 3;
  const std::string fsg_expected =
      Flatten(fsg::MineFsg(small.transactions, fsg_ref).patterns);
  const std::string gspan_expected =
      Flatten(gspan::MineGspan(small.transactions, gspan_ref).patterns);

  std::vector<std::pair<std::string, std::size_t>> sweep_dirs;
  for (const std::size_t cut : {13u, 40u, 75u}) {
    const std::string dir = root + "/equiv" + std::to_string(cut);
    mkdir(dir.c_str(), 0755);
    std::size_t shards = 0;
    for (std::size_t start = 0; start < small.transactions.size();
         start += cut) {
      graph::ShardWriter writer(dir + "/" + graph::ShardFileName(shards));
      for (std::size_t i = start;
           i < std::min(start + cut, small.transactions.size()); ++i) {
        writer.Add(small.transactions[i]);
      }
      std::string error;
      if (!writer.Finish(&error)) {
        std::fprintf(stderr, "shard write failed: %s\n", error.c_str());
        return 1;
      }
      ++shards;
    }
    sweep_dirs.emplace_back(dir, shards);

    for (const std::size_t t : {1u, 2u, 4u}) {
      graph::ShardedTransactionSource::Options source_options;
      source_options.max_resident_shards = 2;
      std::string error;
      const auto source = graph::ShardedTransactionSource::Open(
          dir, source_options, &error);
      if (source == nullptr) {
        std::fprintf(stderr, "cannot open %s: %s\n", dir.c_str(),
                     error.c_str());
        return 1;
      }
      fsg::FsgOptions fo = fsg_ref;
      fo.parallelism = common::Parallelism{t};
      gspan::GspanOptions go = gspan_ref;
      go.parallelism = common::Parallelism{t};
      Stopwatch watch;
      const bool fsg_ok =
          Flatten(fsg::MineFsg(*source, fo).patterns) == fsg_expected;
      const bool gspan_ok =
          Flatten(gspan::MineGspan(*source, go).patterns) ==
          gspan_expected;
      const double seconds = watch.ElapsedSeconds();
      bench::Row("shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(t),
                 std::string(fsg_ok && gspan_ok ? "byte-identical"
                                                : "MISMATCH"));
      json.BeginRow();
      json.Field("bench", "outofcore_equiv");
      json.Field("shards", shards);
      json.Field("threads", t);
      json.Field("match", fsg_ok && gspan_ok);
      json.Field("seconds", seconds);
      json.EndRow();
      if (!fsg_ok || !gspan_ok) rc = 1;
    }
  }

  if (cleanup) {
    RemoveShardDir(big_dir, built.num_shards);
    for (const auto& [dir, shards] : sweep_dirs)
      RemoveShardDir(dir, shards);
    rmdir(root.c_str());
  }
  bench::Section(rc == 0 ? "OK" : "FAILED");
  return rc;
}
