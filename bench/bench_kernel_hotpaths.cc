// Perf-tracking microbench: the four mining kernels the flat-memory port
// targets (ISSUE 5), measured through their public entry points so the
// same binary times the code before and after the GraphView/scratch port.
//
//   vf2_embedding    CountEmbeddings of mined 3-edge patterns against
//                    every KK transaction (the FSG support-counting inner
//                    loop, isolated).
//   vf2_induced      Induced containment of the same patterns (exercises
//                    the per-pair degree/label feasibility tallies).
//   fsg_support      Full MineFsg level-wise run (candidate generation +
//                    support counting).
//   gspan_extension  Full MineGspan pattern growth (seed enumeration +
//                    rightmost-style extension enumeration).
//   canonical_codes  Uncached CanonicalCode over the mined pattern set
//                    (snapshot + 1-WL refinement + DFS minimal code).
//   tidset_intersect TidSet::IntersectWith on seeded random sets, swept
//                    across universe sizes and densities — one row per
//                    encoding (sparse gallop vs bitmap word AND) on the
//                    identical workload (ISSUE 6).
//   fsg_support (sweep) MineFsg swept across transaction counts, one row
//                    per forced TID-set encoding on the identical
//                    workload; "patterns" must agree across encodings
//                    (byte-identity invariant).
//
// Emits BENCH_kernel_hotpaths.json (JsonRowWriter row list; "seconds" is
// the tracked metric, every other field is deterministic and used as the
// row key) plus the usual RunReport. The committed baseline lives in
// bench/baselines/ and is checked by tools/check_bench_regression.py.
//
// Workloads are seeded KK synthetic sets sized to finish in a few seconds
// on one core; all row-key fields (pattern/embedding counts) are
// deterministic, so a drifting count is a correctness bug, not noise.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "fsg/fsg.h"
#include "graph/graph_view.h"
#include "gspan/gspan.h"
#include "iso/canonical.h"
#include "iso/vf2.h"
#include "pattern/tid_set.h"
#include "synth/kk_generator.h"

using namespace tnmine;

namespace {

struct Workload {
  std::vector<graph::LabeledGraph> transactions;
  std::vector<graph::LabeledGraph> patterns;  // mined 3-edge patterns
};

std::vector<graph::LabeledGraph> BuildTransactions(
    std::size_t num_transactions) {
  synth::KkOptions kk;
  kk.num_transactions = num_transactions;
  kk.avg_transaction_edges = 60.0;
  kk.num_seed_patterns = 12;
  kk.avg_pattern_edges = 4.0;
  kk.num_vertex_labels = 10;  // few labels => real search work per match
  kk.num_edge_labels = 3;
  kk.seed = 42;
  return synth::GenerateKkTransactions(kk).transactions;
}

Workload BuildWorkload() {
  Workload w;
  w.transactions = BuildTransactions(200);

  // Mine the pattern set once with gSpan; the 3-edge frequent patterns
  // are the probes for the VF2 rows. Deterministic by the miner's
  // determinism contract.
  gspan::GspanOptions opts;
  opts.min_support = 30;
  opts.max_edges = 3;
  opts.parallelism = common::Parallelism::Serial();
  for (const auto& p : gspan::MineGspan(w.transactions, opts).patterns) {
    if (p.graph.num_edges() == 3) w.patterns.push_back(p.graph);
  }
  return w;
}

/// Deterministic 64-bit mix (splitmix64) — platform-independent, unlike
/// <random> distributions, so row-key fields derived from the generated
/// sets are stable across standard libraries.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Sorted random subset of [0, universe): element i is kept when its hash
/// lands under the density threshold.
std::vector<std::uint32_t> RandomSortedTids(std::uint32_t universe,
                                            unsigned density_pct,
                                            std::uint64_t seed) {
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(universe) * density_pct / 100 + 16);
  for (std::uint32_t i = 0; i < universe; ++i) {
    if (Mix64(seed ^ i) % 100 < density_pct) out.push_back(i);
  }
  return out;
}

}  // namespace

int main() {
  bench::RunReportScope report("bench_kernel_hotpaths");
  bench::JsonRowWriter json("BENCH_kernel_hotpaths.json");

  bench::Section("Kernel hot paths (ISSUE 5 microbenches)");
  const Workload w = BuildWorkload();
  bench::Row("transactions", w.transactions.size());
  bench::Row("probe patterns (3-edge)", w.patterns.size());
  if (w.patterns.empty()) {
    std::fprintf(stderr, "FATAL: workload mined no 3-edge patterns\n");
    return EXIT_FAILURE;
  }

  std::printf("\n%-18s %-10s %s\n", "bench", "seconds", "work");

  // Transaction snapshots, built once and reused by the VF2 rows — the
  // same shape as FSG's counting loop, which snapshots each transaction
  // once per mining run and then runs every candidate's matcher over the
  // views.
  std::vector<graph::GraphView> views;
  views.reserve(w.transactions.size());
  for (const auto& t : w.transactions) views.emplace_back(t);

  // --- vf2_embedding: the FSG support-counting inner loop, isolated.
  {
    constexpr int kReps = 20;
    Stopwatch sw;
    std::uint64_t embeddings = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      embeddings = 0;
      for (const auto& p : w.patterns) {
        iso::SubgraphMatcher matcher(p);  // one plan, every transaction
        for (const auto& v : views) {
          embeddings += matcher.CountEmbeddings(v);
        }
      }
    }
    const double seconds = sw.ElapsedSeconds() / kReps;
    std::printf("%-18s %-10.4f %llu embeddings\n", "vf2_embedding", seconds,
                static_cast<unsigned long long>(embeddings));
    json.BeginRow();
    json.Field("bench", "vf2_embedding");
    json.Field("embeddings", static_cast<std::size_t>(embeddings));
    json.Field("seconds", seconds);
    json.EndRow();
  }

  // --- vf2_induced: per-pair feasibility tallies under induced semantics.
  {
    constexpr int kReps = 20;
    Stopwatch sw;
    std::size_t contained = 0;
    iso::MatchOptions induced;
    induced.induced = true;
    for (int rep = 0; rep < kReps; ++rep) {
      contained = 0;
      for (const auto& p : w.patterns) {
        iso::SubgraphMatcher matcher(p);
        for (const auto& v : views) {
          contained += matcher.Contains(v, induced) ? 1 : 0;
        }
      }
    }
    const double seconds = sw.ElapsedSeconds() / kReps;
    std::printf("%-18s %-10.4f %zu contained\n", "vf2_induced", seconds,
                contained);
    json.BeginRow();
    json.Field("bench", "vf2_induced");
    json.Field("contained", contained);
    json.Field("seconds", seconds);
    json.EndRow();
  }

  // --- fsg_support: full Apriori run, dominated by support counting.
  {
    fsg::FsgOptions opts;
    opts.min_support = 30;
    opts.max_edges = 3;
    opts.parallelism = common::Parallelism::Serial();
    constexpr int kReps = 5;
    Stopwatch sw;
    fsg::FsgResult r;
    for (int rep = 0; rep < kReps; ++rep) {
      iso::ClearCanonicalCodeCache();
      r = fsg::MineFsg(w.transactions, opts);
    }
    const double seconds = sw.ElapsedSeconds() / kReps;
    std::printf("%-18s %-10.4f %zu patterns\n", "fsg_support", seconds,
                r.patterns.size());
    json.BeginRow();
    json.Field("bench", "fsg_support");
    json.Field("patterns", r.patterns.size());
    json.Field("seconds", seconds);
    json.EndRow();
  }

  // --- gspan_extension: pattern growth, dominated by extension
  // enumeration over the projected embeddings.
  {
    gspan::GspanOptions opts;
    opts.min_support = 30;
    opts.max_edges = 4;
    opts.parallelism = common::Parallelism::Serial();
    constexpr int kReps = 3;
    Stopwatch sw;
    gspan::GspanResult r;
    for (int rep = 0; rep < kReps; ++rep) {
      iso::ClearCanonicalCodeCache();
      r = gspan::MineGspan(w.transactions, opts);
    }
    const double seconds = sw.ElapsedSeconds() / kReps;
    std::printf("%-18s %-10.4f %zu patterns\n", "gspan_extension", seconds,
                r.patterns.size());
    json.BeginRow();
    json.Field("bench", "gspan_extension");
    json.Field("patterns", r.patterns.size());
    json.Field("seconds", seconds);
    json.EndRow();
  }

  // --- canonical_codes: snapshot + refinement + minimal-code search,
  // uncached so the kernel itself is what's timed.
  {
    constexpr int kReps = 2000;
    Stopwatch sw;
    std::size_t codes = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      codes = 0;
      for (const auto& p : w.patterns) {
        codes += iso::CanonicalCode(p).size() > 0 ? 1 : 0;
      }
    }
    const double seconds = sw.ElapsedSeconds() / kReps;
    std::printf("%-18s %-10.4f %zu codes\n", "canonical_codes", seconds,
                codes);
    json.BeginRow();
    json.Field("bench", "canonical_codes");
    json.Field("codes", codes);
    json.Field("seconds", seconds);
    json.EndRow();
  }

  // --- tidset_intersect: the two intersection kernels (sparse gallop vs
  // bitmap word AND) on identical seeded workloads, CBitmapCompetition
  // style: every (universe, density) cell gets one row per encoding, so
  // the baseline tracks both and the density cutoff can be sanity-checked
  // against real timings.
  {
    constexpr std::uint32_t kUniverses[] = {4096, 65536, 262144};
    constexpr unsigned kDensities[] = {1, 5, 25};
    for (const std::uint32_t universe : kUniverses) {
      for (const unsigned density : kDensities) {
        const std::vector<std::uint32_t> a =
            RandomSortedTids(universe, density, 0xA11CE);
        const std::vector<std::uint32_t> b =
            RandomSortedTids(universe, density, 0xB0B);
        const int reps = static_cast<int>(
            std::max<std::uint32_t>(8, (1u << 24) / universe));
        for (const pattern::TidSet::Encoding enc :
             {pattern::TidSet::Encoding::kSparse,
              pattern::TidSet::Encoding::kBitmap}) {
          const bool bitmap = enc == pattern::TidSet::Encoding::kBitmap;
          const pattern::TidSet::ScopedEncodingPolicy policy(
              bitmap ? pattern::TidSet::EncodingPolicy::kForceBitmap
                     : pattern::TidSet::EncodingPolicy::kForceSparse);
          const pattern::TidSet lhs =
              pattern::TidSet::FromSorted(a, universe);
          const pattern::TidSet rhs =
              pattern::TidSet::FromSorted(b, universe);
          Stopwatch sw;
          std::size_t cardinality = 0;
          for (int rep = 0; rep < reps; ++rep) {
            pattern::TidSet t = lhs;
            t.IntersectWith(rhs);
            cardinality = t.Cardinality();
          }
          const double seconds = sw.ElapsedSeconds() / reps;
          const char* enc_name = bitmap ? "bitmap" : "sparse";
          std::printf("%-18s %-10.3e u=%u d=%u%% %s -> %zu\n",
                      "tidset_intersect", seconds, universe, density,
                      enc_name, cardinality);
          json.BeginRow();
          json.Field("bench", "tidset_intersect");
          json.Field("universe", static_cast<std::size_t>(universe));
          json.Field("density_pct", static_cast<std::size_t>(density));
          json.Field("encoding", enc_name);
          json.Field("cardinality", cardinality);
          json.Field("seconds", seconds);
          json.EndRow();
        }
      }
    }
  }

  // --- fsg_support sweep: the full miner at growing transaction counts
  // (min_support scales with the count, so the pattern space stays
  // comparable), one row per forced TID-set encoding on the identical
  // workload. The "patterns" field must agree between the two encodings:
  // mined output is encoding-independent by contract.
  {
    constexpr std::size_t kTxnCounts[] = {200, 400, 800};
    for (const std::size_t txns : kTxnCounts) {
      const std::vector<graph::LabeledGraph> transactions =
          txns == 200 ? w.transactions : BuildTransactions(txns);
      fsg::FsgOptions opts;
      opts.min_support = txns * 30 / 200;
      opts.max_edges = 3;
      opts.parallelism = common::Parallelism::Serial();
      for (const pattern::TidSet::Encoding enc :
           {pattern::TidSet::Encoding::kSparse,
            pattern::TidSet::Encoding::kBitmap}) {
        const bool bitmap = enc == pattern::TidSet::Encoding::kBitmap;
        const pattern::TidSet::ScopedEncodingPolicy policy(
            bitmap ? pattern::TidSet::EncodingPolicy::kForceBitmap
                   : pattern::TidSet::EncodingPolicy::kForceSparse);
        constexpr int kReps = 2;
        Stopwatch sw;
        fsg::FsgResult r;
        for (int rep = 0; rep < kReps; ++rep) {
          iso::ClearCanonicalCodeCache();
          r = fsg::MineFsg(transactions, opts);
        }
        const double seconds = sw.ElapsedSeconds() / kReps;
        const char* enc_name = bitmap ? "bitmap" : "sparse";
        std::printf("%-18s %-10.4f txns=%zu %s %zu patterns\n",
                    "fsg_support", seconds, txns, enc_name,
                    r.patterns.size());
        json.BeginRow();
        json.Field("bench", "fsg_support");
        json.Field("txns", txns);
        json.Field("encoding", enc_name);
        json.Field("patterns", r.patterns.size());
        json.Field("seconds", seconds);
        json.EndRow();
      }
    }
  }

  json.Close();
  std::printf("\nwrote BENCH_kernel_hotpaths.json\n");
  return 0;
}
