// Experiment E3 — Section 5.1: SUBDUE with the Size principle.
//
// The paper ran the Size principle on a 100-vertex / 561-edge OD_TD
// subgraph (beam 5, best 5, max size 6; 4.9 days of runtime) and found
// "very complex patterns", including a 31-vertex/37-edge substructure
// repeated twice; it also ran a truncated graph of 4,037 vertices and
// ~900 edges (12 days) that produced trivial results. Reproduction
// targets: the Size principle reaches the configured maximum pattern size
// with non-trivial repeated substructures, and the sparse truncated graph
// yields only trivial (tiny) winners.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "data/od_graph.h"
#include "graph/algorithms.h"
#include "pattern/render.h"
#include "subdue/subdue.h"

using namespace tnmine;

namespace {

void Report(const subdue::SubdueResult& result, double seconds,
            const Discretizer* bins) {
  bench::Row("runtime seconds", seconds);
  bench::Row("substructures evaluated", result.substructures_evaluated);
  std::size_t best_edges = 0;
  for (const subdue::Substructure& sub : result.best) {
    best_edges = std::max(best_edges, sub.pattern.num_edges());
  }
  bench::Row("largest best-pattern edges", best_edges);
  for (const subdue::Substructure& sub : result.best) {
    std::printf(
        "value=%.4f instances=%zu (non-overlapping=%zu) vertices=%zu "
        "edges=%zu\n",
        sub.value, sub.instances.size(), sub.non_overlapping_instances,
        sub.pattern.num_vertices(), sub.pattern.num_edges());
    std::printf("%s", pattern::RenderGraph(sub.pattern, bins).c_str());
  }
}

}  // namespace

int main() {
  bench::RunReportScope report("bench_subdue_size");
  const data::OdGraph od = data::BuildOdTd(bench::PaperDataset());

  bench::Section(
      "E3a: Size principle, 100-vertex OD_TD subgraph (paper: beam 5, "
      "best 5, size <= 6; 4.9 days on a 2005 Sparc)");
  const graph::LabeledGraph dense = bench::RegionSubgraph(od.graph, 100,
                                                          100);
  bench::Row("subgraph vertices", dense.num_vertices());
  bench::Row("subgraph edges", dense.num_edges());
  subdue::SubdueOptions options;
  options.method = subdue::EvalMethod::kSize;
  options.beam_width = 5;
  options.num_best = 5;
  options.max_pattern_edges = 6;
  options.limit = 700;
  options.max_instances = 1500;
  Stopwatch sw;
  const subdue::SubdueResult big = subdue::DiscoverSubstructures(dense,
                                                                 options);
  Report(big, sw.ElapsedSeconds(), &od.discretizer);

  bench::Section(
      "E3b: truncated sparse graph, 4,037 vertices / ~900 edges (paper: 12 "
      "days, 'fairly trivial results')");
  // Sample ~900 transactions across the whole network.
  data::TransactionDataset sample;
  {
    Rng rng(77);
    const auto& all = bench::PaperDataset();
    std::vector<std::size_t> order(all.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(order);
    for (std::size_t i = 0; i < 900 && i < order.size(); ++i) {
      sample.Add(all[order[i]]);
    }
  }
  const data::OdGraph sparse_od = data::BuildOdTd(sample);
  bench::Row("vertices", sparse_od.graph.num_vertices());
  bench::Row("edges", sparse_od.graph.num_edges());
  sw.Reset();
  const subdue::SubdueResult sparse =
      subdue::DiscoverSubstructures(sparse_od.graph, options);
  Report(sparse, sw.ElapsedSeconds(), &sparse_od.discretizer);
  std::printf(
      "\nExpected shape: E3a reaches size-6 patterns with repeats; E3b's "
      "sparse graph\nyields only small/trivial substructures, as the paper "
      "reports.\n");
  return 0;
}
