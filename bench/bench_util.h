#ifndef TNMINE_BENCH_BENCH_UTIL_H_
#define TNMINE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "data/dataset.h"
#include "data/generator.h"

namespace tnmine::bench {

/// Prints a boxed section header so every experiment binary's output reads
/// the same way.
inline void Section(const std::string& title) {
  std::printf(
      "\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline void Row(const std::string& name, const std::string& value) {
  std::printf("  %-52s %s\n", name.c_str(), value.c_str());
}

inline void Row(const std::string& name, double value) {
  std::printf("  %-52s %.3f\n", name.c_str(), value);
}

inline void Row(const std::string& name, std::size_t value) {
  std::printf("  %-52s %zu\n", name.c_str(), value);
}

/// Machine-readable benchmark output: a JSON array of flat row objects
/// written to `path` ("[{...},{...}]"). Scripts track perf trajectories
/// across PRs from these files (e.g. BENCH_parallel.json). Usage:
///
///   JsonRowWriter json("BENCH_parallel.json");
///   json.BeginRow();
///   json.Field("bench", "gspan");
///   json.Field("threads", std::size_t{4});
///   json.Field("seconds", 1.25);
///   json.EndRow();
class JsonRowWriter {
 public:
  explicit JsonRowWriter(const std::string& path)
      : out_(std::fopen(path.c_str(), "w")) {
    if (out_ != nullptr) std::fputc('[', out_);
  }
  ~JsonRowWriter() { Close(); }
  JsonRowWriter(const JsonRowWriter&) = delete;
  JsonRowWriter& operator=(const JsonRowWriter&) = delete;

  bool ok() const { return out_ != nullptr; }

  void BeginRow() {
    if (out_ == nullptr) return;
    if (rows_ > 0) std::fputc(',', out_);
    std::fputs("\n  {", out_);
    fields_ = 0;
  }

  void Field(const std::string& name, const std::string& value) {
    Key(name);
    Escaped(value);
  }
  void Field(const std::string& name, const char* value) {
    Field(name, std::string(value));
  }
  void Field(const std::string& name, double value) {
    if (out_ == nullptr) return;
    Key(name);
    std::fprintf(out_, "%.6g", value);
  }
  void Field(const std::string& name, std::size_t value) {
    if (out_ == nullptr) return;
    Key(name);
    std::fprintf(out_, "%zu", value);
  }
  void Field(const std::string& name, bool value) {
    if (out_ == nullptr) return;
    Key(name);
    std::fputs(value ? "true" : "false", out_);
  }

  void EndRow() {
    if (out_ == nullptr) return;
    std::fputc('}', out_);
    ++rows_;
  }

  void Close() {
    if (out_ == nullptr) return;
    std::fputs("\n]\n", out_);
    std::fclose(out_);
    out_ = nullptr;
  }

 private:
  void Key(const std::string& name) {
    if (out_ == nullptr) return;
    if (fields_ > 0) std::fputc(',', out_);
    std::fputc(' ', out_);
    Escaped(name);
    std::fputs(": ", out_);
    ++fields_;
  }

  void Escaped(const std::string& s) {
    if (out_ == nullptr) return;
    std::fputc('"', out_);
    for (char c : s) {
      if (c == '"' || c == '\\') std::fputc('\\', out_);
      if (static_cast<unsigned char>(c) >= 0x20) {
        std::fputc(c, out_);
      }
    }
    std::fputc('"', out_);
  }

  std::FILE* out_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t fields_ = 0;
};

/// Emits this binary's RunReport (counters + span aggregates + wall time;
/// see telemetry::RenderRunReport) when it goes out of scope — declare one
/// at the top of main():
///
///   int main() {
///     tnmine::bench::RunReportScope report("bench_gspan_scaling");
///     ...
///   }
///
/// The report lands in RUNREPORT_<name>.json in the working directory;
/// TNMINE_RUNREPORT_OUT overrides the path (CI points it at the artifact
/// directory). Extra workload knobs can be attached via AddField().
class RunReportScope {
 public:
  explicit RunReportScope(std::string name)
      : start_(std::chrono::steady_clock::now()) {
    options_.binary = std::move(name);
  }
  ~RunReportScope() {
    options_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const char* env = std::getenv("TNMINE_RUNREPORT_OUT");
    const std::string path = env != nullptr && env[0] != '\0'
                                 ? std::string(env)
                                 : "RUNREPORT_" + options_.binary + ".json";
    if (!telemetry::WriteRunReport(path, options_)) {
      std::fprintf(stderr, "warning: could not write RunReport to %s\n",
                   path.c_str());
    }
  }
  RunReportScope(const RunReportScope&) = delete;
  RunReportScope& operator=(const RunReportScope&) = delete;

  void AddField(const std::string& key, const std::string& value) {
    options_.extra[key] = value;
  }

 private:
  std::chrono::steady_clock::time_point start_;
  telemetry::RunReportOptions options_;
};

/// The calibrated paper-scale dataset every experiment starts from. Built
/// once per process.
inline const data::TransactionDataset& PaperDataset() {
  static const data::TransactionDataset* dataset = [] {
    auto* ds = new data::TransactionDataset(
        data::GenerateTransportData(data::GeneratorConfig::PaperScale()));
    return ds;
  }();
  return *dataset;
}

}  // namespace tnmine::bench

#include "graph/algorithms.h"

namespace tnmine::bench {

/// Carves a connected ~n-vertex region out of a graph: BFS from the
/// `rank`-th busiest vertex, skipping the `exclude_top` busiest hubs, then
/// induces the subgraph. With exclude_top=40 on the paper-scale OD graph
/// this matches the density of the paper's SUBDUE workloads (100
/// vertices, ~561 edges) — a contiguous regional slice of the network,
/// not the far denser hub-to-hub core.
inline graph::LabeledGraph RegionSubgraph(const graph::LabeledGraph& g,
                                          std::size_t n, std::size_t rank,
                                          std::size_t exclude_top = 40) {
  std::vector<graph::VertexId> by_degree(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(),
            [&](graph::VertexId a, graph::VertexId b) {
              return g.Degree(a) > g.Degree(b);
            });
  std::vector<char> excluded(g.num_vertices(), 0);
  for (std::size_t i = 0; i < std::min(exclude_top, by_degree.size());
       ++i) {
    excluded[by_degree[i]] = 1;
  }
  const graph::VertexId seed =
      by_degree[std::min(exclude_top + rank, by_degree.size() - 1)];
  // BFS over the undirected view, never entering excluded hubs.
  std::vector<graph::VertexId> region;
  std::vector<char> visited(g.num_vertices(), 0);
  std::vector<graph::VertexId> queue = {seed};
  visited[seed] = 1;
  std::size_t head = 0;
  while (head < queue.size() && region.size() < n) {
    const graph::VertexId v = queue[head++];
    region.push_back(v);
    auto visit = [&](graph::EdgeId e) {
      const auto& edge = g.edge(e);
      const graph::VertexId other = (edge.src == v) ? edge.dst : edge.src;
      if (!visited[other] && !excluded[other]) {
        visited[other] = 1;
        queue.push_back(other);
      }
    };
    g.ForEachOutEdge(v, visit);
    g.ForEachInEdge(v, visit);
  }
  return graph::InducedSubgraph(g, region);
}

}  // namespace tnmine::bench

#endif  // TNMINE_BENCH_BENCH_UTIL_H_
