#ifndef TNMINE_BENCH_BENCH_UTIL_H_
#define TNMINE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/generator.h"

namespace tnmine::bench {

/// Prints a boxed section header so every experiment binary's output reads
/// the same way.
inline void Section(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline void Row(const std::string& name, const std::string& value) {
  std::printf("  %-52s %s\n", name.c_str(), value.c_str());
}

inline void Row(const std::string& name, double value) {
  std::printf("  %-52s %.3f\n", name.c_str(), value);
}

inline void Row(const std::string& name, std::size_t value) {
  std::printf("  %-52s %zu\n", name.c_str(), value);
}

/// The calibrated paper-scale dataset every experiment starts from. Built
/// once per process.
inline const data::TransactionDataset& PaperDataset() {
  static const data::TransactionDataset* dataset = [] {
    auto* ds = new data::TransactionDataset(
        data::GenerateTransportData(data::GeneratorConfig::PaperScale()));
    return ds;
  }();
  return *dataset;
}

}  // namespace tnmine::bench

#include "graph/algorithms.h"

namespace tnmine::bench {

/// Carves a connected ~n-vertex region out of a graph: BFS from the
/// `rank`-th busiest vertex, skipping the `exclude_top` busiest hubs, then
/// induces the subgraph. With exclude_top=40 on the paper-scale OD graph
/// this matches the density of the paper's SUBDUE workloads (100
/// vertices, ~561 edges) — a contiguous regional slice of the network,
/// not the far denser hub-to-hub core.
inline graph::LabeledGraph RegionSubgraph(const graph::LabeledGraph& g,
                                          std::size_t n, std::size_t rank,
                                          std::size_t exclude_top = 40) {
  std::vector<graph::VertexId> by_degree(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(),
            [&](graph::VertexId a, graph::VertexId b) {
              return g.Degree(a) > g.Degree(b);
            });
  std::vector<char> excluded(g.num_vertices(), 0);
  for (std::size_t i = 0; i < std::min(exclude_top, by_degree.size());
       ++i) {
    excluded[by_degree[i]] = 1;
  }
  const graph::VertexId seed =
      by_degree[std::min(exclude_top + rank, by_degree.size() - 1)];
  // BFS over the undirected view, never entering excluded hubs.
  std::vector<graph::VertexId> region;
  std::vector<char> visited(g.num_vertices(), 0);
  std::vector<graph::VertexId> queue = {seed};
  visited[seed] = 1;
  std::size_t head = 0;
  while (head < queue.size() && region.size() < n) {
    const graph::VertexId v = queue[head++];
    region.push_back(v);
    auto visit = [&](graph::EdgeId e) {
      const auto& edge = g.edge(e);
      const graph::VertexId other = (edge.src == v) ? edge.dst : edge.src;
      if (!visited[other] && !excluded[other]) {
        visited[other] = 1;
        queue.push_back(other);
      }
    };
    g.ForEachOutEdge(v, visit);
    g.ForEachInEdge(v, visit);
  }
  return graph::InducedSubgraph(g, region);
}

}  // namespace tnmine::bench

#endif  // TNMINE_BENCH_BENCH_UTIL_H_
