// Ablation A1 — Apriori candidate generation (FSG) vs. pattern growth
// (gSpan), the design axis Section 8 points at: "the existing graph
// mining algorithms need to be enhanced... or new graph mining algorithms
// need to be investigated".
//
// Both miners produce identical pattern sets (the test suite verifies
// this); what differs is cost. google-benchmark times both on the same
// partitioned transportation workload and on a KK-style synthetic set.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/miner.h"
#include "data/od_graph.h"
#include "fsg/fsg.h"
#include "gspan/gspan.h"
#include "partition/split_graph.h"
#include "synth/kk_generator.h"

using namespace tnmine;

namespace {

const std::vector<graph::LabeledGraph>& OdPartitions() {
  static const auto* partitions = [] {
    const data::OdGraph od = data::BuildOdTh(bench::PaperDataset());
    partition::SplitOptions split;
    split.strategy = partition::SplitStrategy::kBreadthFirst;
    split.num_partitions = 800;
    split.seed = 5;
    return new std::vector<graph::LabeledGraph>(
        partition::SplitGraph(od.graph, split));
  }();
  return *partitions;
}

const std::vector<graph::LabeledGraph>& KkTransactions() {
  static const auto* txns = [] {
    synth::KkOptions gen;
    gen.num_transactions = 150;
    gen.avg_transaction_edges = 18;
    gen.num_vertex_labels = 8;
    gen.num_edge_labels = 4;
    gen.seed = 9;
    return new std::vector<graph::LabeledGraph>(
        synth::GenerateKkTransactions(gen).transactions);
  }();
  return *txns;
}

void BM_FsgOdPartitions(benchmark::State& state) {
  const auto& txns = OdPartitions();
  fsg::FsgOptions options;
  options.min_support = static_cast<std::size_t>(state.range(0));
  options.max_edges = 3;
  std::size_t patterns = 0;
  for (auto _ : state) {
    patterns = fsg::MineFsg(txns, options).patterns.size();
    benchmark::DoNotOptimize(patterns);
  }
  state.counters["patterns"] = static_cast<double>(patterns);
}

void BM_GspanOdPartitions(benchmark::State& state) {
  const auto& txns = OdPartitions();
  gspan::GspanOptions options;
  options.min_support = static_cast<std::size_t>(state.range(0));
  options.max_edges = 3;
  // Uniform vertex labels make full embedding lists explode on hub-heavy
  // partitions; cap them (sound under-approximation, flagged in the
  // result) — the price pattern-growth pays on this workload.
  options.max_embeddings_per_transaction = 32;
  std::size_t patterns = 0;
  for (auto _ : state) {
    patterns = gspan::MineGspan(txns, options).patterns.size();
    benchmark::DoNotOptimize(patterns);
  }
  state.counters["patterns"] = static_cast<double>(patterns);
}

void BM_FsgKk(benchmark::State& state) {
  fsg::FsgOptions options;
  options.min_support = static_cast<std::size_t>(state.range(0));
  options.max_edges = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fsg::MineFsg(KkTransactions(), options).patterns.size());
  }
}

void BM_GspanKk(benchmark::State& state) {
  gspan::GspanOptions options;
  options.min_support = static_cast<std::size_t>(state.range(0));
  options.max_edges = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gspan::MineGspan(KkTransactions(), options).patterns.size());
  }
}

BENCHMARK(BM_FsgOdPartitions)->Arg(480)->Arg(240)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GspanOdPartitions)->Arg(480)->Arg(240)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FsgKk)->Arg(30)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GspanKk)->Arg(30)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  tnmine::bench::RunReportScope report("bench_ablation_gspan");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
