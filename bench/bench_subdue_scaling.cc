// Experiment E4 — Section 5.1 runtime observations, as a google-benchmark
// sweep: SUBDUE cost vs. graph size and evaluation principle.
//
// The paper's absolute numbers (3.25 h for MDL on 100 vertices, 4.9 days
// for Size, months extrapolated for the full graph) belong to a 2005
// Sparc; the *shape* to reproduce is (a) runtime grows steeply with graph
// size and (b) the Size principle costs more than MDL at the same size
// because it keeps growing large candidate substructures.

#include <algorithm>
#include <map>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "data/od_graph.h"
#include "graph/algorithms.h"
#include "subdue/subdue.h"

using namespace tnmine;

namespace {

const graph::LabeledGraph& SubgraphOfSize(std::size_t n) {
  static std::map<std::size_t, graph::LabeledGraph>* cache =
      new std::map<std::size_t, graph::LabeledGraph>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    const data::OdGraph od = data::BuildOdGw(bench::PaperDataset());
    it = cache->emplace(n, bench::RegionSubgraph(od.graph, n, 100)).first;
  }
  return it->second;
}

void RunSubdue(benchmark::State& state, subdue::EvalMethod method) {
  const graph::LabeledGraph& g =
      SubgraphOfSize(static_cast<std::size_t>(state.range(0)));
  subdue::SubdueOptions options;
  options.method = method;
  options.beam_width = 4;
  options.num_best = 3;
  options.max_pattern_edges = 3;
  // SUBDUE's own default evaluation budget (|E|/2 + 1) and uncapped
  // instance lists, as in the paper's runs: total cost scales with the
  // graph.
  options.limit = 0;
  options.max_instances = 0;
  for (auto _ : state) {
    const subdue::SubdueResult result =
        subdue::DiscoverSubstructures(g, options);
    benchmark::DoNotOptimize(result.substructures_evaluated);
  }
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
  state.counters["edges"] = static_cast<double>(g.num_edges());
}

void BM_SubdueMdl(benchmark::State& state) {
  RunSubdue(state, subdue::EvalMethod::kMdl);
}
void BM_SubdueSize(benchmark::State& state) {
  RunSubdue(state, subdue::EvalMethod::kSize);
}

BENCHMARK(BM_SubdueMdl)->Arg(25)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubdueSize)->Arg(25)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  tnmine::bench::RunReportScope report("bench_subdue_scaling");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
