// Experiments E5 + E6 — Section 5.2.2 / Figures 2 and 3: structurally
// similar routes via Algorithm 1 (SplitGraph + FSG).
//
// The paper ran breadth-first partitioning at support 240 (found an
// average of 667 frequent patterns; Figure 2 shows a hub-and-spoke found
// 243 times on OD_TH) and depth-first partitioning at support 120 (200
// patterns on average; Figure 3 shows a 14-edge pickup/delivery chain
// found 63 times on OD_TD). Reproduction targets: hundreds of frequent
// patterns per run; breadth-first surfaces hub-and-spoke shapes,
// depth-first surfaces chains.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/interestingness.h"
#include "core/miner.h"
#include "data/od_graph.h"
#include "pattern/render.h"

using namespace tnmine;

namespace {

void ShowTop(const core::StructuralMiningResult& result,
             const Discretizer& bins, pattern::PatternShape want_shape,
             const char* figure) {
  std::printf("\nMost interesting patterns (%s analogue):\n", figure);
  const auto ranked = core::RankPatterns(result.registry);
  std::size_t shown = 0;
  bool shape_shown = false;
  for (const auto* p : ranked) {
    const bool is_wanted = p->graph.num_edges() >= 2 &&
                           pattern::ClassifyShape(p->graph) == want_shape;
    if (shown < 3 || (is_wanted && !shape_shown)) {
      std::printf("%s", pattern::RenderPattern(*p, &bins).c_str());
      ++shown;
      shape_shown |= is_wanted;
    }
    if (shown >= 4 && shape_shown) break;
  }
  // Shape census over multi-edge patterns.
  std::size_t hubs = 0, chains = 0, cycles = 0, other = 0;
  for (const auto* p : ranked) {
    if (p->graph.num_edges() < 2) continue;
    switch (pattern::ClassifyShape(p->graph)) {
      case pattern::PatternShape::kHubAndSpoke: ++hubs; break;
      case pattern::PatternShape::kChain: ++chains; break;
      case pattern::PatternShape::kCycle: ++cycles; break;
      default: ++other; break;
    }
  }
  std::printf(
      "shape census (>=2 edges): hub-and-spoke=%zu chain=%zu cycle=%zu "
      "other=%zu\n",
      hubs, chains, cycles, other);
}

}  // namespace

int main() {
  bench::RunReportScope report("bench_fig2_fig3_fsg_structural");
  const auto& ds = bench::PaperDataset();

  bench::Section(
      "E5 / Figure 2: breadth-first partitioning, OD_TH, support 240 "
      "(paper: avg 667 patterns; hub-and-spoke x243)");
  {
    const data::OdGraph od = data::BuildOdTh(ds);
    core::StructuralMiningOptions options;
    options.strategy = partition::SplitStrategy::kBreadthFirst;
    options.num_partitions = 400;
    options.min_support = 240;
    options.max_pattern_edges = 4;
    options.repetitions = 1;
    options.seed = 2005;
    Stopwatch sw;
    const auto result = core::MineStructuralPatterns(od.graph, options);
    bench::Row("runtime seconds", sw.ElapsedSeconds());
    bench::Row("partitions produced", result.partitions_per_repetition[0]);
    bench::Row("frequent patterns (paper avg: 667)", result.registry.size());
    ShowTop(result, od.discretizer, pattern::PatternShape::kHubAndSpoke,
            "Figure 2");
  }

  bench::Section(
      "E6 / Figure 3: depth-first partitioning, OD_TD, support 120 "
      "(paper: avg 200 patterns; 14-edge chain x63)");
  {
    const data::OdGraph od = data::BuildOdTd(ds);
    core::StructuralMiningOptions options;
    options.strategy = partition::SplitStrategy::kDepthFirst;
    options.num_partitions = 400;
    options.min_support = 120;
    options.max_pattern_edges = 4;
    options.repetitions = 1;
    options.seed = 2005;
    Stopwatch sw;
    const auto result = core::MineStructuralPatterns(od.graph, options);
    bench::Row("runtime seconds", sw.ElapsedSeconds());
    bench::Row("partitions produced", result.partitions_per_repetition[0]);
    bench::Row("frequent patterns (paper avg: 200)", result.registry.size());
    ShowTop(result, od.discretizer, pattern::PatternShape::kChain,
            "Figure 3");

    // The paper's Figure-3 chain itself was "frequent in 63 instances" —
    // below the headline support threshold — so surface the long chains
    // at a comparable support level.
    std::printf("\nLonger chains at support 60 (the Figure-3 pattern's own "
                "frequency level):\n");
    options.min_support = 60;
    options.max_pattern_edges = 3;
    const auto low = core::MineStructuralPatterns(od.graph, options);
    const pattern::FrequentPattern* longest_chain = nullptr;
    for (const auto* p : low.registry.SortedBySupport()) {
      if (p->graph.num_edges() >= 3 &&
          pattern::ClassifyShape(p->graph) == pattern::PatternShape::kChain) {
        if (longest_chain == nullptr ||
            p->graph.num_edges() > longest_chain->graph.num_edges()) {
          longest_chain = p;
        }
      }
    }
    if (longest_chain != nullptr) {
      std::printf("%s",
                  pattern::RenderPattern(*longest_chain,
                                         &od.discretizer).c_str());
    } else {
      std::printf("  (no chain of >= 3 edges at this support)\n");
    }
  }
  return 0;
}
