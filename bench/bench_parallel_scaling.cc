// Perf-tracking bench: parallel scaling of the mining core.
//
// Runs gSpan mining, FSG candidate counting, and the Algorithm-1
// partition sweep at 1/2/4/N lanes and emits machine-readable
// BENCH_parallel.json alongside the usual table, so the perf trajectory
// of the parallel mining core is tracked from the PR that introduced it
// onward. Every run also cross-checks that the pattern sets are
// identical across thread counts (the thread pool's determinism
// contract).
//
// Workloads are seeded synthetic sets (KK transactions, planted graph)
// sized to give every lane real work while finishing in seconds even on
// a single core — the paper-scale sweeps live in bench_partition_sweep
// and the figure benches.

#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/miner.h"
#include "fsg/fsg.h"
#include "gspan/gspan.h"
#include "iso/canonical.h"
#include "synth/kk_generator.h"
#include "synth/planted.h"

using namespace tnmine;

namespace {

std::vector<std::size_t> ThreadCounts() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::set<std::size_t> counts = {1, 2, 4};
  counts.insert(hw == 0 ? 1 : hw);
  return {counts.begin(), counts.end()};
}

struct Timing {
  double seconds = 0;
  std::size_t patterns = 0;
};

/// Times `run` at each thread count; aborts if the pattern count drifts
/// across thread counts (determinism violation).
template <typename Run>
void Sweep(const char* name, bench::JsonRowWriter& json, const Run& run) {
  std::printf("%-16s %-8s %-10s %-10s %-9s\n", name, "threads", "seconds",
              "patterns", "speedup");
  double base_seconds = 0;
  std::size_t base_patterns = 0;
  for (std::size_t threads : ThreadCounts()) {
    // Cold canonical-code cache per run so timings compare like for like.
    iso::ClearCanonicalCodeCache();
    Stopwatch sw;
    const Timing t = run(threads);
    const double seconds = sw.ElapsedSeconds();
    if (threads == 1) {
      base_seconds = seconds;
      base_patterns = t.patterns;
    } else if (t.patterns != base_patterns) {
      std::fprintf(stderr,
                   "FATAL: %s at %zu threads found %zu patterns, expected "
                   "%zu\n",
                   name, threads, t.patterns, base_patterns);
      std::abort();
    }
    const double speedup = seconds > 0 ? base_seconds / seconds : 0;
    std::printf("%-16s %-8zu %-10.3f %-10zu %-9.2f\n", "", threads, seconds,
                t.patterns, speedup);
    json.BeginRow();
    json.Field("bench", name);
    json.Field("threads", threads);
    json.Field("seconds", seconds);
    json.Field("patterns", t.patterns);
    json.Field("speedup_vs_1", speedup);
    json.Field("hardware_concurrency",
               static_cast<std::size_t>(std::thread::hardware_concurrency()));
    json.EndRow();
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::RunReportScope report("bench_parallel_scaling");
  bench::Section("Parallel scaling: gSpan / FSG / partition sweep");

  // One fixed KK-style transaction set shared by the two miner sweeps,
  // so only the miners' own parallelism is measured.
  synth::KkOptions kk;
  kk.num_transactions = 1200;
  kk.avg_transaction_edges = 14;
  kk.num_seed_patterns = 8;
  kk.avg_pattern_edges = 3;
  kk.num_vertex_labels = 6;
  kk.num_edge_labels = 3;
  kk.seed = 42;
  const std::vector<graph::LabeledGraph> transactions =
      synth::GenerateKkTransactions(kk).transactions;
  std::printf("workload: %zu KK-style transactions\n\n",
              transactions.size());

  bench::JsonRowWriter json("BENCH_parallel.json");

  Sweep("gspan", json, [&](std::size_t threads) {
    gspan::GspanOptions options;
    options.min_support = 48;
    options.max_edges = 4;
    options.parallelism = common::Parallelism{threads};
    const gspan::GspanResult result =
        gspan::MineGspan(transactions, options);
    return Timing{0, result.patterns.size()};
  });

  Sweep("fsg", json, [&](std::size_t threads) {
    fsg::FsgOptions options;
    options.min_support = 48;
    options.max_edges = 3;
    options.parallelism = common::Parallelism{threads};
    const fsg::FsgResult result = fsg::MineFsg(transactions, options);
    return Timing{0, result.patterns.size()};
  });

  // Algorithm 1 over a planted single graph: repetitions fan out in
  // parallel, each repetition runs the full split + mine pipeline.
  synth::PlantedOptions planted;
  planted.num_patterns = 4;
  planted.pattern_edges = 3;
  planted.instances_per_pattern = 80;
  planted.noise_vertices = 300;
  planted.noise_edges = 600;
  planted.seed = 17;
  const synth::PlantedResult data = synth::GeneratePlantedGraph(planted);

  Sweep("partition_sweep", json, [&](std::size_t threads) {
    core::StructuralMiningOptions options;
    options.num_partitions = 60;
    options.min_support = 18;
    options.max_pattern_edges = 3;
    options.repetitions = 4;
    options.seed = 5;
    options.parallelism = common::Parallelism{threads};
    const core::StructuralMiningResult result =
        core::MineStructuralPatterns(data.graph, options);
    return Timing{0, result.registry.size()};
  });

  json.Close();
  std::printf("rows written to BENCH_parallel.json\n");
  return 0;
}
