// Experiment E8 — footnote 2: recall of partition-then-mine on simulated
// data with known planted patterns.
//
// "Tests on simulated data constructed by joining subgraphs with known
// frequent patterns to form a single graph, and then partitioned, show
// recall rates in the 50% and above range with both depth-first and
// breadth-first partitioning, with better results for smaller graphs."
// Reproduction targets: recall >= 0.5 for both strategies, and recall on
// the smaller planted graph >= recall on the larger one.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/miner.h"
#include "synth/planted.h"

using namespace tnmine;

namespace {

double MeasureRecall(const synth::PlantedResult& data,
                     partition::SplitStrategy strategy,
                     std::size_t num_partitions, std::size_t min_support,
                     std::size_t repetitions) {
  core::StructuralMiningOptions options;
  options.strategy = strategy;
  options.num_partitions = num_partitions;
  options.min_support = min_support;
  options.max_pattern_edges = 4;
  options.repetitions = repetitions;
  options.seed = 7;
  const auto result = core::MineStructuralPatterns(data.graph, options);
  return synth::PatternRecall(data.patterns, result.registry);
}

}  // namespace

int main() {
  bench::RunReportScope report("bench_recall_planted");
  bench::Section("E8 / footnote 2: planted-pattern recall");
  std::printf("%-12s %-14s %-8s %-8s %-8s\n", "graph", "strategy", "m=1",
              "m=3", "m=5");
  for (const int difficulty : {0, 1, 2}) {
    synth::PlantedOptions planted;
    planted.num_patterns = 8;
    planted.pattern_edges = 4;
    planted.num_edge_labels = 6;
    planted.seed = 2005;
    std::size_t partitions = 30;
    std::size_t support = 10;
    const char* label = "small";
    switch (difficulty) {
      case 0:  // small, easy
        planted.instances_per_pattern = 30;
        planted.noise_vertices = 80;
        planted.noise_edges = 150;
        partitions = 30;
        support = 10;
        break;
      case 1:  // large
        planted.instances_per_pattern = 60;
        planted.noise_vertices = 600;
        planted.noise_edges = 1500;
        partitions = 120;
        support = 20;
        label = "large";
        break;
      case 2:  // dense noise: partitions wander into the glue and split
               // instances, so single runs miss patterns and Algorithm
               // 1's repetitions visibly rescue them
        planted.instances_per_pattern = 25;
        planted.noise_vertices = 300;
        planted.noise_edges = 2000;
        partitions = 60;
        support = 8;
        label = "dense/hard";
        break;
    }
    const synth::PlantedResult data = synth::GeneratePlantedGraph(planted);
    for (const auto strategy : {partition::SplitStrategy::kBreadthFirst,
                                partition::SplitStrategy::kDepthFirst}) {
      std::printf("%-12s %-14s", label,
                  strategy == partition::SplitStrategy::kBreadthFirst
                      ? "breadth-first"
                      : "depth-first");
      for (std::size_t m : {1u, 3u, 5u}) {
        const double recall =
            MeasureRecall(data, strategy, partitions, support, m);
        std::printf(" %-8.2f", recall);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected shape (paper): recall >= 0.50 for both strategies; "
      "smaller graphs do\nbetter; more repetitions (Algorithm 1's m) "
      "recover patterns split by unlucky\npartitionings.\n");
  return 0;
}
