// Experiment E13 — Section 7.2: classification with a C4.5-style tree
// (Weka's J4.8).
//
// Paper findings to reproduce: (a) on the discretized dataset with class
// TRANS_MODE, the tree is ~96 % accurate and "first splits on the
// GROSS_WEIGHT attribute"; (b) with TRANS_MODE removed and TOTAL_DISTANCE
// as the class, TOTAL_DISTANCE and MOVE_TRANSIT_HOURS were NOT as highly
// correlated as TOTAL_DISTANCE with DEST_LATITUDE / ORIGIN_LATITUDE.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include <memory>

#include "common/random.h"
#include "common/statistics.h"
#include "common/stopwatch.h"
#include "ml/decision_tree.h"
#include "ml/naive_bayes.h"
#include "ml/validation.h"

using namespace tnmine;

int main() {
  bench::RunReportScope report("bench_classification");
  const auto& ds = bench::PaperDataset();
  const ml::AttributeTable raw = ml::AttributeTable::FromTransactions(ds);

  bench::Section(
      "E13a: J4.8 analogue, class TRANS_MODE (paper: 96 % accuracy, root "
      "split on GROSS_WEIGHT)");
  const ml::AttributeTable disc = raw.Discretized(10,
                                                  /*equal_frequency=*/true);
  Rng rng(31);
  ml::AttributeTable train, test;
  disc.Split(0.33, rng, &train, &test);
  const int cls = train.AttributeIndex("TRANS_MODE");
  Stopwatch sw;
  const ml::DecisionTree tree = ml::DecisionTree::Train(train, cls, {});
  bench::Row("train rows", train.num_rows());
  bench::Row("training seconds", sw.ElapsedSeconds());
  bench::Row("root split attribute (paper: GROSS_WEIGHT)",
             std::string(train.attribute(tree.root_attribute()).name));
  bench::Row("training accuracy", tree.Accuracy(train));
  bench::Row("test accuracy (paper: 0.96)", tree.Accuracy(test));
  bench::Row("tree nodes", tree.num_nodes());
  bench::Row("tree depth", tree.depth());
  // Weka-style 5-fold cross-validation of the same learner, plus the
  // NaiveBayes baseline for scale.
  {
    const ml::CrossValidationResult cv = ml::CrossValidate(
        disc, cls, 5, 17, [](const ml::AttributeTable& fold, int c) {
          auto model = std::make_shared<ml::DecisionTree>(
              ml::DecisionTree::Train(fold, c, {}));
          return [model](const std::vector<double>& row) {
            return model->Predict(row);
          };
        });
    bench::Row("5-fold CV accuracy", cv.mean_accuracy);
    bench::Row("5-fold CV stddev", cv.stddev_accuracy);
    const ml::NaiveBayes nb = ml::NaiveBayes::Train(train, cls);
    bench::Row("NaiveBayes baseline test accuracy", nb.Accuracy(test));
  }

  bench::Section(
      "E13b: class TOTAL_DISTANCE, TRANS_MODE removed (paper: distance "
      "tracks latitudes more than transit hours)");
  // Rebuild without TRANS_MODE, with TOTAL_DISTANCE discretized as class.
  ml::AttributeTable distance_table;
  distance_table.AddNumericAttribute("ORIGIN_LATITUDE");
  distance_table.AddNumericAttribute("ORIGIN_LONGITUDE");
  distance_table.AddNumericAttribute("DEST_LATITUDE");
  distance_table.AddNumericAttribute("DEST_LONGITUDE");
  distance_table.AddNumericAttribute("GROSS_WEIGHT");
  distance_table.AddNumericAttribute("MOVE_TRANSIT_HOURS");
  distance_table.AddNumericAttribute("TOTAL_DISTANCE");
  for (const data::Transaction& t : ds.transactions()) {
    distance_table.AddRow({t.origin_latitude, t.origin_longitude,
                           t.dest_latitude, t.dest_longitude,
                           t.gross_weight, t.transit_hours,
                           t.total_distance});
  }
  const ml::AttributeTable disc2 =
      distance_table.Discretized(10, /*equal_frequency=*/true);
  const int dist_cls = disc2.AttributeIndex("TOTAL_DISTANCE");
  const ml::DecisionTree dist_tree =
      ml::DecisionTree::Train(disc2, dist_cls, {});
  bench::Row("full-tree training accuracy", dist_tree.Accuracy(disc2));
  bench::Row("root split attribute",
             std::string(disc2.attribute(dist_tree.root_attribute()).name));

  std::printf("\nSingle-attribute predictive power for TOTAL_DISTANCE "
              "(stump accuracy / |Pearson r| on raw values):\n");
  for (const char* name :
       {"MOVE_TRANSIT_HOURS", "DEST_LATITUDE", "ORIGIN_LATITUDE",
        "DEST_LONGITUDE", "ORIGIN_LONGITUDE", "GROSS_WEIGHT"}) {
    // Stump: a depth-1 tree over just this attribute.
    ml::AttributeTable stump_table;
    stump_table.AddNominalAttribute(
        name, disc2.attribute(disc2.AttributeIndex(name)).values);
    stump_table.AddNominalAttribute("TOTAL_DISTANCE",
                                    disc2.attribute(dist_cls).values);
    for (std::size_t r = 0; r < disc2.num_rows(); ++r) {
      stump_table.AddRow(
          {disc2.value(r, disc2.AttributeIndex(name)),
           disc2.value(r, dist_cls)});
    }
    ml::DecisionTreeOptions stump_options;
    stump_options.max_depth = 1;
    stump_options.prune = false;
    const ml::DecisionTree stump =
        ml::DecisionTree::Train(stump_table, 1, stump_options);
    const double corr = PearsonCorrelation(
        distance_table.Column(distance_table.AttributeIndex(name)),
        distance_table.Column(
            distance_table.AttributeIndex("TOTAL_DISTANCE")));
    std::printf("  %-22s stump acc %.3f   |r| %.3f\n", name,
                stump.Accuracy(stump_table), std::fabs(corr));
  }
  std::printf(
      "\nPaper's observation: TOTAL_DISTANCE was more strongly tied to the "
      "latitude\nattributes than to MOVE_TRANSIT_HOURS. Our generator "
      "carries heavy dwell noise\nin the recorded transit hours; compare "
      "the rows above to see which side wins.\n");
  return 0;
}
