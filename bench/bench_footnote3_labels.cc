// Experiment E11 — Section 8 / footnote 3: vertex-label cardinality blows
// up FSG's candidate sets.
//
// The paper generated synthetic transaction sets with the FSG authors'
// generator and "a large number of distinct vertex labels; this produced
// the same out of memory problems". Reproduction target: with transaction
// count and sizes fixed, raising the vertex-label alphabet multiplies the
// frequent-edge set and the level-2 candidate set until the memory budget
// aborts the run.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "fsg/fsg.h"
#include "synth/kk_generator.h"

using namespace tnmine;

int main() {
  bench::RunReportScope report("bench_footnote3_labels");
  bench::Section(
      "E11 / footnote 3: FSG candidate growth vs. vertex-label "
      "cardinality (KK-style generator: |D|=200, |T|=20, |I|=5)");
  std::printf("%-9s %-9s %-12s %-14s %-10s %-8s\n", "vlabels", "F1",
              "candidates", "peak bytes", "oom", "seconds");
  for (const int vlabels : {4, 16, 64, 256, 1024}) {
    synth::KkOptions gen;
    gen.num_transactions = 200;
    gen.avg_transaction_edges = 20;
    // The potentially-frequent pool grows with the label alphabet, as in
    // the transportation data: each location pair is its own recurring
    // structure. This is what makes many labels translate into many
    // frequent edges and, from those, a combinatorial candidate set.
    gen.num_seed_patterns = std::min<std::size_t>(
        300, std::max<std::size_t>(20, static_cast<std::size_t>(vlabels)));
    gen.avg_pattern_edges = 5;
    gen.num_vertex_labels = vlabels;
    gen.num_edge_labels = 4;
    gen.seed = 11;
    const synth::KkResult data = synth::GenerateKkTransactions(gen);

    fsg::FsgOptions miner;
    miner.min_support = 2;  // low support, as in the failing 2005 runs
    miner.max_edges = 3;    // the level-3 join is where candidates explode
    miner.max_candidate_bytes = 32ull << 20;
    Stopwatch sw;
    const fsg::FsgResult result = fsg::MineFsg(data.transactions, miner);
    const std::size_t f1 = result.frequent_per_level.empty()
                               ? 0
                               : result.frequent_per_level[0];
    std::size_t candidates = 0;  // total generated beyond level 1
    for (std::size_t level = 1; level < result.candidates_per_level.size();
         ++level) {
      candidates += result.candidates_per_level[level];
    }
    std::printf("%-9d %-9zu %-12zu %-14llu %-10s %-8.2f\n", vlabels, f1,
                candidates,
                static_cast<unsigned long long>(result.peak_candidate_bytes),
                result.aborted_out_of_memory ? "yes" : "no",
                sw.ElapsedSeconds());
  }
  std::printf(
      "\nReading: with a chemistry-sized alphabet (paper's comparison "
      "dataset: 66\nvertex labels) the frequent-edge set F1 stays around a "
      "hundred; with a\ntransportation-sized alphabet of recurring "
      "location labels F1 grows an order\nof magnitude, and FSG's "
      "candidate generation scales with it. Combined with\nthe large "
      "temporal transactions (see bench_table2_table3_temporal, which "
      "does\nabort on the memory budget), this is the failure mode of "
      "Section 8 /\nfootnote 3. The tiny 4-label row shows the opposite "
      "regime: everything is\nfrequent, so the lattice itself explodes.\n");
  return 0;
}
