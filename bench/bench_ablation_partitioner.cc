// Ablation A4 — partitioner choice. Section 5.2 notes "efficient graph
// partitioning algorithms are available, e.g., METIS", but adopts BFS/DFS
// because "they allow us to control the type of patterns preserved after
// partitioning". This ablation pits the paper's SplitGraph against a
// METIS-style multilevel min-cut partitioner on planted-pattern recall.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/miner.h"
#include "fsg/fsg.h"
#include "partition/multilevel.h"
#include "synth/planted.h"

using namespace tnmine;

int main() {
  bench::RunReportScope report("bench_ablation_partitioner");
  bench::Section("A4: BFS/DFS SplitGraph vs. multilevel min-cut, planted "
                 "recall");
  synth::PlantedOptions planted;
  planted.num_patterns = 8;
  planted.pattern_edges = 4;
  planted.instances_per_pattern = 25;
  planted.noise_vertices = 300;
  planted.noise_edges = 2000;
  planted.num_edge_labels = 6;
  planted.seed = 2005;
  const synth::PlantedResult data = synth::GeneratePlantedGraph(planted);
  // Dense glue makes partitions slice instances; the partitioners now
  // separate on how many instances they keep whole.
  const std::size_t support = 8;
  const std::size_t k = 60;
  bench::Row("graph vertices", data.graph.num_vertices());
  bench::Row("graph edges", data.graph.num_edges());
  bench::Row("planted patterns", data.patterns.size());

  std::printf("\n%-16s %-10s %-10s %-10s %-9s\n", "partitioner",
              "partitions", "patterns", "recall", "seconds");
  for (const auto strategy : {partition::SplitStrategy::kBreadthFirst,
                              partition::SplitStrategy::kDepthFirst}) {
    core::StructuralMiningOptions options;
    options.strategy = strategy;
    options.num_partitions = k;
    options.min_support = support;
    options.max_pattern_edges = 4;
    options.repetitions = 1;
    options.seed = 3;
    Stopwatch sw;
    const auto result = core::MineStructuralPatterns(data.graph, options);
    std::printf("%-16s %-10zu %-10zu %-10.2f %-9.2f\n",
                strategy == partition::SplitStrategy::kBreadthFirst
                    ? "breadth-first"
                    : "depth-first",
                result.partitions_per_repetition[0], result.registry.size(),
                synth::PatternRecall(data.patterns, result.registry),
                sw.ElapsedSeconds());
  }
  {
    partition::MultilevelOptions ml;
    ml.num_partitions = k;
    ml.seed = 3;
    Stopwatch sw;
    const partition::MultilevelResult assignment =
        partition::MultilevelPartition(data.graph, ml);
    const auto parts =
        partition::ExtractPartitions(data.graph, assignment.assignment);
    fsg::FsgOptions miner;
    miner.min_support = support;
    miner.max_edges = 4;
    const fsg::FsgResult mined = fsg::MineFsg(parts, miner);
    pattern::PatternRegistry registry;
    for (const auto& p : mined.patterns) {
      pattern::FrequentPattern copy = p;
      registry.InsertOrMerge(std::move(copy));
    }
    std::printf("%-16s %-10zu %-10zu %-10.2f %-9.2f  (cut edges dropped: "
                "%zu)\n",
                "multilevel", parts.size(), registry.size(),
                synth::PatternRecall(data.patterns, registry),
                sw.ElapsedSeconds(), assignment.cut_edges);
  }
  std::printf(
      "\nReading: min-cut keeps clusters intact (few cut edges) but its "
      "balance\nconstraint can still slice pattern instances; BFS/DFS let "
      "the caller bias which\nshapes survive, which is why the paper chose "
      "them.\n");
  return 0;
}
