// bench_server_throughput — mixed multi-client workload against an
// in-process tnmined Server (DESIGN.md §14).
//
// Phase 1 (warmup) issues every distinct mining request once, serially:
// all cache misses, so the mining counters in the RunReport are the
// deterministic single-threaded mining cost of the request set. Phase 2
// (mixed) hammers the server from NUM_CLIENTS concurrent connections
// with a fixed per-client schedule of cached mining requests, pings, and
// stats calls, and reports requests/sec and latency percentiles.
//
// The request schedule is fixed, so the server/cache_* counters are
// exact: every phase-2 mining request must hit. The binary exits
// non-zero if the hit ratio is not 100% — a silent cache regression
// would otherwise masquerade as a latency win (the miss costs more but
// mining time hides inside the same row).
//
// Output: paper-style rows on stdout, BENCH_server_throughput.json
// (JsonRowWriter rows; only "seconds" is volatile) in the working
// directory, and the RunReport via RunReportScope
// (TNMINE_RUNREPORT_OUT). Volatile throughput numbers (rps, p50/p99) go
// to stdout and the RunReport's extra fields, NOT into row fields — the
// regression checker matches rows on every non-"seconds" field.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/generator.h"
#include "server/json.h"
#include "server/server.h"
#include "server/wire.h"

namespace {

using namespace tnmine;

constexpr std::size_t kNumClients = 8;
constexpr std::size_t kRequestsPerClient = 32;

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

server::JsonValue MiningRequest(const std::string& op,
                                server::JsonValue::Object params) {
  // threads is pinned so the warmup mining counters are machine-stable.
  params.emplace("threads", server::JsonValue(2));
  server::JsonValue request = server::JsonValue::MakeObject();
  request.Set("op", op);
  request.Set("params", server::JsonValue(std::move(params)));
  return request;
}

/// The distinct mining requests this bench exercises. Phase 1 mines each
/// once; phase 2 replays them from the cache.
std::vector<server::JsonValue> MiningRequests() {
  std::vector<server::JsonValue> requests;
  for (int support : {8, 9, 10, 11}) {
    requests.push_back(MiningRequest(
        "structural", {{"support", server::JsonValue(support)},
                       {"top", server::JsonValue(3)}}));
  }
  requests.push_back(MiningRequest(
      "temporal", {{"support_fraction", server::JsonValue(0.05)}}));
  requests.push_back(MiningRequest(
      "temporal", {{"support_fraction", server::JsonValue(0.08)}}));
  return requests;
}

server::JsonValue Op(const char* op) {
  server::JsonValue request = server::JsonValue::MakeObject();
  request.Set("op", op);
  return request;
}

}  // namespace

int main() {
  bench::RunReportScope report("server_throughput");

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string base = tmpdir != nullptr && tmpdir[0] != '\0'
                               ? std::string(tmpdir)
                               : std::string("/tmp");
  const std::string pid = std::to_string(static_cast<long>(::getpid()));
  const std::string data_path = base + "/bench_server_" + pid + ".csv";
  const std::string socket_path = base + "/bench_server_" + pid + ".sock";

  data::GeneratorConfig config = data::GeneratorConfig::SmallScale();
  config.seed = 7;
  std::string error;
  if (!data::GenerateTransportData(config).SaveCsv(data_path, &error)) {
    std::fprintf(stderr, "cannot write %s: %s\n", data_path.c_str(),
                 error.c_str());
    return 1;
  }

  server::ServerOptions options;
  options.listen = "unix:" + socket_path;
  options.snapshot_path = data_path;
  options.max_inflight = kNumClients;
  server::Server srv(options);
  if (!srv.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }

  bench::JsonRowWriter json("BENCH_server_throughput.json");
  const std::vector<server::JsonValue> mining = MiningRequests();

  bench::Section("Phase 1: serial warmup (every request is a miss)");
  const auto warm_start = std::chrono::steady_clock::now();
  {
    server::BlockingClient client;
    if (!client.Connect(srv.address(), &error)) {
      std::fprintf(stderr, "connect: %s\n", error.c_str());
      return 1;
    }
    for (const server::JsonValue& request : mining) {
      server::JsonValue response;
      if (!client.Call(request, &response, &error) ||
          !response.Get("ok").AsBool()) {
        std::fprintf(stderr, "warmup request failed: %s\n", error.c_str());
        return 1;
      }
    }
  }
  const double warm_seconds =
      Seconds(warm_start, std::chrono::steady_clock::now());
  bench::Row("warmup requests", mining.size());
  bench::Row("warmup seconds", warm_seconds);
  json.BeginRow();
  json.Field("bench", "server_warmup");
  json.Field("requests", mining.size());
  json.Field("seconds", warm_seconds);
  json.EndRow();

  bench::Section("Phase 2: mixed concurrent workload (all hits)");
  // Fixed per-client schedule: 2 cached mining requests, a ping, and a
  // stats call, repeated. Every client holds one connection for its
  // whole schedule (the CLI usage pattern).
  std::vector<std::vector<double>> latencies(kNumClients);
  std::vector<std::thread> clients;
  std::size_t expected_hits = 0;
  for (std::size_t c = 0; c < kNumClients; ++c) {
    for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
      if (i % 4 < 2) ++expected_hits;
    }
  }
  const auto mixed_start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < kNumClients; ++c) {
    clients.emplace_back([&, c] {
      server::BlockingClient client;
      std::string client_error;
      if (!client.Connect(srv.address(), &client_error)) return;
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        const server::JsonValue& request =
            i % 4 == 0   ? mining[(c + i) % mining.size()]
            : i % 4 == 1 ? mining[(c + i + 1) % mining.size()]
            : i % 4 == 2 ? Op("ping")
                         : Op("stats");
        server::JsonValue response;
        const auto t0 = std::chrono::steady_clock::now();
        if (!client.Call(request, &response, &client_error)) return;
        latencies[c].push_back(
            Seconds(t0, std::chrono::steady_clock::now()));
        if (!response.Get("ok").AsBool()) return;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double mixed_seconds =
      Seconds(mixed_start, std::chrono::steady_clock::now());

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  const std::size_t total = kNumClients * kRequestsPerClient;
  if (all.size() != total) {
    std::fprintf(stderr, "only %zu/%zu requests completed\n", all.size(),
                 total);
    return 1;
  }
  std::sort(all.begin(), all.end());
  const double p50 = all[all.size() / 2];
  const double p99 = all[all.size() * 99 / 100];
  const double rps = static_cast<double>(total) / mixed_seconds;

  bench::Row("clients", kNumClients);
  bench::Row("requests", total);
  bench::Row("seconds", mixed_seconds);
  bench::Row("requests/sec", rps);
  bench::Row("p50 latency (ms)", p50 * 1e3);
  bench::Row("p99 latency (ms)", p99 * 1e3);
  json.BeginRow();
  json.Field("bench", "server_mixed");
  json.Field("clients", kNumClients);
  json.Field("requests", total);
  json.Field("seconds", mixed_seconds);
  json.EndRow();

  bench::Section("Cache accounting (must be exact)");
  const auto& cache = srv.cache();
  bench::Row("cache hits", static_cast<std::size_t>(cache.hits()));
  bench::Row("cache misses", static_cast<std::size_t>(cache.misses()));
  bench::Row("cache entries", cache.entries());
  const double hit_ratio =
      static_cast<double>(cache.hits()) /
      static_cast<double>(cache.hits() + cache.misses());
  bench::Row("hit ratio", hit_ratio);

  report.AddField("rps", std::to_string(rps));
  report.AddField("p50_ms", std::to_string(p50 * 1e3));
  report.AddField("p99_ms", std::to_string(p99 * 1e3));
  report.AddField("hit_ratio", std::to_string(hit_ratio));

  srv.Stop();
  std::remove(data_path.c_str());

  // The schedule is fixed: phase 1 misses once per distinct request,
  // phase 2 must hit on every mining request.
  if (cache.misses() != mining.size() ||
      cache.hits() != expected_hits) {
    std::fprintf(stderr,
                 "cache accounting drifted: %llu misses (want %zu), "
                 "%llu hits (want %zu)\n",
                 static_cast<unsigned long long>(cache.misses()),
                 mining.size(),
                 static_cast<unsigned long long>(cache.hits()),
                 expected_hits);
    return 1;
  }
  return 0;
}
