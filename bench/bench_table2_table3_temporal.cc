// Experiment E9 — Section 6 / Table 2: temporally partitioned graph data,
// plus the full-dataset FSG attempt that ran out of memory.
//
// The paper built one graph transaction per date (an OD pair is active on
// every day between its requested pickup and delivery dates), with
// location-unique vertex labels and 7 gross-weight edge bins; Table 2
// summarizes the result (146 transactions, avg 1,092 edges, max 4,462,
// heavily skewed sizes). FSG could not run on this set — "insufficient
// memory / swap space" on a 1 GB Sparc — which we reproduce with the
// miner's candidate-memory budget.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "fsg/fsg.h"
#include "partition/temporal.h"

using namespace tnmine;

int main() {
  bench::RunReportScope report("bench_table2_table3_temporal");
  const auto& ds = bench::PaperDataset();

  bench::Section("E9 / Table 2: per-day graph transactions (before "
                 "component splitting)");
  partition::TemporalOptions options;
  options.split_components = false;
  options.remove_single_edge_transactions = false;
  options.deduplicate_edges = true;
  const partition::TemporalPartition tp =
      partition::PartitionByActiveDay(ds, options);
  const partition::TemporalStats stats =
      partition::ComputeTemporalStats(tp.transactions);
  bench::Row("input transactions (paper: 146)", stats.num_transactions);
  bench::Row("distinct edge labels (paper: 7)", stats.distinct_edge_labels);
  bench::Row("distinct vertex labels (paper: 3,835)",
             stats.distinct_vertex_labels);
  bench::Row("avg edges per transaction (paper: 1,092)", stats.avg_edges);
  bench::Row("avg vertices per transaction (paper: 601)",
             stats.avg_vertices);
  bench::Row("max edges (paper: 4,462)", stats.max_edges);
  bench::Row("max vertices (paper: 2,140)", stats.max_vertices);
  std::printf("  size histogram (edge count; paper: 73/5/3/31/34):\n");
  const char* bucket_names[6] = {"[1,10)", "[10,100)", "[100,1000)",
                                 "[1000,2000)", "[2000,5000)", "[5000,+)"};
  for (int b = 0; b < 6; ++b) {
    std::printf("    %-14s %zu\n", bucket_names[b], stats.size_buckets[b]);
  }

  bench::Section(
      "E9b / Section 6.1: FSG on the full temporal set aborts on memory "
      "(paper: 'unable to run FSG... insufficient memory / swap space', "
      "1 GB machine)");
  {
    // The raw huge day-graphs (no component splitting, no day filter) —
    // this is the workload that killed FSG.
    const partition::TemporalPartition big = tp;
    bench::Row("graph transactions", big.transactions.size());
    // At 100 % support nothing is frequent (no route runs every single
    // day), so the level-wise search exits immediately — the hard case is
    // a low support, where the location-unique labels make the
    // frequent-edge set huge and candidate generation blows the budget.
    fsg::FsgOptions miner;
    miner.max_edges = 3;
    miner.max_candidate_bytes = 64ull << 20;  // modest budget, 2005-style
    for (const double support_fraction : {1.0, 0.02}) {
      miner.min_support = std::max<std::size_t>(
          2, static_cast<std::size_t>(
                 support_fraction *
                 static_cast<double>(big.transactions.size())));
      Stopwatch sw;
      const fsg::FsgResult result = fsg::MineFsg(big.transactions, miner);
      std::printf("  support %.0f%% (= %zu transactions):\n",
                  100 * support_fraction, miner.min_support);
      bench::Row("  runtime seconds", sw.ElapsedSeconds());
      bench::Row("  frequent patterns", result.patterns.size());
      bench::Row("  aborted out of memory",
                 std::string(result.aborted_out_of_memory
                                 ? "yes (as the paper reports)"
                                 : "no"));
      bench::Row("  levels completed before abort",
                 result.levels_completed);
      bench::Row("  peak candidate bytes", result.peak_candidate_bytes);
    }
  }
  return 0;
}
