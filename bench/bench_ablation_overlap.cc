// Ablation A2 — SUBDUE instance overlap. The paper ran "all the
// experiments... without allowing overlap in the patterns"; this ablation
// shows what changes when overlapping instances are counted: star-heavy
// transportation graphs inflate instance counts dramatically because
// every spoke pair shares the hub.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "data/od_graph.h"
#include "graph/algorithms.h"
#include "pattern/render.h"
#include "subdue/subdue.h"

using namespace tnmine;

int main() {
  bench::RunReportScope report("bench_ablation_overlap");
  bench::Section("A2: SUBDUE with and without instance overlap");
  const data::OdGraph od = data::BuildOdGw(bench::PaperDataset());
  const graph::LabeledGraph g = bench::RegionSubgraph(od.graph, 100, 100);
  bench::Row("vertices", g.num_vertices());
  bench::Row("edges", g.num_edges());

  for (const bool overlap : {false, true}) {
    subdue::SubdueOptions options;
    options.method = subdue::EvalMethod::kSetCover;
    options.beam_width = 4;
    options.num_best = 3;
    options.max_pattern_edges = 3;
    options.limit = 150;
    options.max_instances = 1500;
    options.allow_overlap = overlap;
    Stopwatch sw;
    const subdue::SubdueResult result =
        subdue::DiscoverSubstructures(g, options);
    std::printf("\noverlap %s (%.2f s):\n", overlap ? "ALLOWED" : "FORBIDDEN",
                sw.ElapsedSeconds());
    for (const subdue::Substructure& sub : result.best) {
      std::printf(
          "  value=%.1f total-instances=%zu vertex-disjoint=%zu edges=%zu\n",
          sub.value, sub.instances.size(), sub.non_overlapping_instances,
          sub.pattern.num_edges());
    }
  }
  std::printf(
      "\nExpected shape: with overlap allowed, hub-sharing instances "
      "multiply the\ncounts; forbidding overlap (the paper's setting) "
      "keeps counts honest at the\ncost of preferring patterns that tile "
      "the graph disjointly.\n");
  return 0;
}
