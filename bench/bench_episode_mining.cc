// Extension X1 — Section 9's "dynamic graph" challenge, implemented:
// periodic route episodes and chained path episodes over the dated
// transaction stream ("find frequently repeated connection paths, where
// the entire path is not connected at any given time instant but adjacent
// edges and vertices always co-exist... possibly with an unknown
// period").

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/episodes.h"

using namespace tnmine;

int main() {
  bench::RunReportScope report("bench_episode_mining");
  bench::Section("X1: dynamic-graph episode mining (Section 9 extension)");
  const auto& ds = bench::PaperDataset();
  core::EpisodeOptions options;
  options.min_occurrences = 8;
  options.min_period_days = 5;
  options.max_period_days = 9;
  options.period_tolerance_days = 1.0;
  options.min_leg_gap_days = 0;
  options.max_leg_gap_days = 2;
  options.min_path_occurrences = 6;
  options.max_path_legs = 3;
  Stopwatch sw;
  const core::EpisodeResult result = core::MineRouteEpisodes(ds, options);
  bench::Row("runtime seconds", sw.ElapsedSeconds());
  bench::Row("periodic route episodes (~weekly)", result.routes.size());
  bench::Row("chained path episodes", result.paths.size());

  std::printf("\nTop periodic routes (the generator plants weekly "
              "schedules):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, result.routes.size());
       ++i) {
    std::printf("  %s\n", core::EpisodeToString(result.routes[i]).c_str());
  }
  std::printf("\nTop chained paths (multi-leg, never co-present on one "
              "day):\n");
  std::size_t multi_leg_shown = 0;
  for (const core::PathEpisode& p : result.paths) {
    if (p.stops.size() >= 3) {
      std::printf("  %s\n", core::EpisodeToString(p).c_str());
      if (++multi_leg_shown >= 5) break;
    }
  }
  if (multi_leg_shown == 0) {
    std::printf("  (no multi-leg chains at these thresholds)\n");
  }
  std::printf(
      "\nThis is the capability Section 9 calls for and the per-day "
      "partitioning of\nSection 6 structurally cannot deliver: the pattern "
      "spans days, so no daily\ngraph transaction ever contains it.\n");
  return 0;
}
