// Ablation A3 — edge-label binning granularity. Section 3 argues for
// binning ("labeling edges with the exact values would lead to few
// frequent patterns being detected, since the edge labels are often
// unique"); the paper picked 7 weight bins and 10 transit-hour bins. This
// ablation sweeps the bin count: too few bins produce trivial patterns
// (everything matches everything), too many destroy frequency.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/miner.h"
#include "data/od_graph.h"

using namespace tnmine;

int main() {
  bench::RunReportScope report("bench_ablation_binning");
  bench::Section("A3: frequent patterns vs. edge-label bin count "
                 "(OD_GW, breadth-first k=800, support 240)");
  const auto& ds = bench::PaperDataset();
  std::printf("%-7s %-16s %-10s %-12s %-9s\n", "bins", "distinct labels",
              "patterns", "max edges", "seconds");
  for (const int bins : {1, 3, 7, 15, 40, 200, 4000, 2000000}) {
    data::OdGraphOptions graph_options;
    graph_options.attribute = data::EdgeAttribute::kGrossWeight;
    graph_options.num_bins = bins;
    const data::OdGraph od = data::BuildOdGraph(ds, graph_options);
    core::StructuralMiningOptions options;
    options.strategy = partition::SplitStrategy::kBreadthFirst;
    options.num_partitions = 800;
    options.min_support = 240;
    options.max_pattern_edges = 3;
    options.seed = 13;
    Stopwatch sw;
    const auto result = core::MineStructuralPatterns(od.graph, options);
    std::size_t max_edges = 0;
    for (const auto* p : result.registry.SortedBySupport()) {
      max_edges = std::max(max_edges, p->graph.num_edges());
    }
    std::printf("%-7d %-16zu %-10zu %-12zu %-9.2f\n", bins,
                od.graph.CountDistinctEdgeLabels(), result.registry.size(),
                max_edges, sw.ElapsedSeconds());
  }
  std::printf(
      "\nReading: coarse bins give few, structure-only patterns; finer "
      "bins multiply\npattern *types* while thinning each one's support; "
      "near-exact labels (the\nlast rows approach one bin per distinct "
      "weight) starve support entirely —\nSection 3's argument for "
      "binning: 'labeling edges with the exact values would\nlead to few "
      "frequent patterns being detected'.\n");
  return 0;
}
