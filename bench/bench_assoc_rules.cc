// Experiment E12 — Section 7.1: association rules with Apriori.
//
// The paper's Experiment 1 discretized the full (date-free) dataset and
// found rules like GROSS_WEIGHT=(-inf,-4501] -> TRANS_MODE=LTL ("a
// lightweight load is usually an LTL shipment, and the reverse holds
// also"). Experiment 2 used only the origin/destination coordinates and
// found ORIGIN_LONGITUDE=(-84.76,-75.43] -> ORIGIN_LATITUDE=(39.8,44.08]
// at confidence 0.87. Reproduction targets: high-confidence weight->mode
// rules in both directions, and an origin-longitude -> origin-latitude
// rule with confidence around 0.85.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "ml/apriori.h"

using namespace tnmine;

namespace {

void PrintMatching(const ml::AttributeTable& table,
                   const ml::AprioriResult& result, int lhs_attr,
                   int rhs_attr, const char* what) {
  std::printf("\n%s:\n", what);
  std::size_t shown = 0;
  for (const ml::AssociationRule& rule : result.rules) {
    if (rule.lhs.size() == 1 && rule.lhs[0].attribute == lhs_attr &&
        rule.rhs[0].attribute == rhs_attr) {
      std::printf("  %s\n", ml::RuleToString(table, rule).c_str());
      if (++shown >= 4) break;
    }
  }
  if (shown == 0) std::printf("  (none above the thresholds)\n");
}

}  // namespace

int main() {
  bench::RunReportScope report("bench_assoc_rules");
  const auto& ds = bench::PaperDataset();

  bench::Section(
      "E12a / Experiment 1: Apriori on the discretized full table");
  const ml::AttributeTable raw = ml::AttributeTable::FromTransactions(ds);
  const ml::AttributeTable table = raw.Discretized(10,
                                                   /*equal_frequency=*/true);
  ml::AprioriOptions options;
  options.min_support = 0.08;
  options.min_confidence = 0.80;
  options.max_itemset_size = 2;
  Stopwatch sw;
  const ml::AprioriResult result = ml::MineAssociationRules(table, options);
  bench::Row("rows", table.num_rows());
  bench::Row("frequent itemsets", result.frequent_itemsets.size());
  bench::Row("rules (conf >= 0.80)", result.rules.size());
  bench::Row("runtime seconds", sw.ElapsedSeconds());
  const int weight = table.AttributeIndex("GROSS_WEIGHT");
  const int mode = table.AttributeIndex("TRANS_MODE");
  PrintMatching(table, result, weight, mode,
                "GROSS_WEIGHT -> TRANS_MODE rules (paper: light -> LTL)");
  // "The reverse holds also": with ten weight bins no single-bin
  // consequent can reach 0.8 confidence, so check the aggregate — how
  // often an LTL shipment falls in the light half of the weight range.
  {
    std::size_t ltl = 0, ltl_light = 0;
    const int light_bins = table.attribute(weight).values.size() / 2;
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      if (table.NominalValue(r, mode) != "LTL") continue;
      ++ltl;
      ltl_light += table.value(r, weight) < light_bins;
    }
    std::printf(
        "\nTRANS_MODE=LTL -> GROSS_WEIGHT in lower half of bins "
        "('the reverse holds also'):\n  confidence %.2f over %zu LTL "
        "shipments\n",
        static_cast<double>(ltl_light) / static_cast<double>(ltl), ltl);
  }

  bench::Section(
      "E12b / Experiment 2: origin coordinates only (paper: lon range -> "
      "lat range, conf 0.87)");
  // Build the two-column table the paper used.
  ml::AttributeTable coords;
  coords.AddNumericAttribute("ORIGIN_LATITUDE");
  coords.AddNumericAttribute("ORIGIN_LONGITUDE");
  for (const data::Transaction& t : ds.transactions()) {
    coords.AddRow({t.origin_latitude, t.origin_longitude});
  }
  // Direct check of the paper's exact rule, before any discretization:
  // ORIGIN_LONGITUDE in (-84.76, -75.43] -> ORIGIN_LATITUDE in
  // (39.8, 44.08], reported at confidence 0.87.
  {
    std::size_t in_lon = 0, in_both = 0;
    for (const data::Transaction& t : ds.transactions()) {
      if (t.origin_longitude > -84.76 && t.origin_longitude <= -75.43) {
        ++in_lon;
        in_both += t.origin_latitude > 39.8 && t.origin_latitude <= 44.08;
      }
    }
    std::printf(
        "\nPaper's exact intervals: lon in (-84.76,-75.43] -> lat in "
        "(39.8,44.08]\n  confidence %.2f (paper: 0.87) over %zu shipments "
        "in the longitude band\n",
        static_cast<double>(in_both) / static_cast<double>(in_lon), in_lon);
  }
  // And via Apriori on wide equal-width bins (the paper's intervals are
  // ~9 degrees of longitude wide, i.e. coarse bins).
  const ml::AttributeTable coord_table =
      coords.Discretized(6, /*equal_frequency=*/false);
  ml::AprioriOptions coord_options;
  coord_options.min_support = 0.05;
  coord_options.min_confidence = 0.60;
  coord_options.max_itemset_size = 2;
  const ml::AprioriResult coord_rules =
      ml::MineAssociationRules(coord_table, coord_options);
  PrintMatching(coord_table, coord_rules,
                coord_table.AttributeIndex("ORIGIN_LONGITUDE"),
                coord_table.AttributeIndex("ORIGIN_LATITUDE"),
                "ORIGIN_LONGITUDE -> ORIGIN_LATITUDE rules (6 equal-width "
                "bins)");
  std::printf(
      "\nInterpretation (paper): such rules 'generalize the geographical "
      "area a\nshipment originates from' — eastern longitudes imply the "
      "Great-Lakes /\nNortheast latitude band.\n");
  return 0;
}
