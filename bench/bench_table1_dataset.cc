// Experiment E1 — Section 3 / Table 1: dataset description.
//
// Regenerates the paper's "Transportation Network Data Description": the
// schema of Table 1 plus the aggregate statistics quoted in the text
// (98,292 transactions, 4,038 distinct lat/long pairs, 1,797 origins,
// 3,770 destinations, 20,900 OD pairs, out-degrees 1/2373/12 and
// in-degrees 1/832/6 on the deduplicated OD graph).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/date.h"
#include "data/od_graph.h"
#include "graph/algorithms.h"

using namespace tnmine;

int main() {
  bench::RunReportScope report("bench_table1_dataset");
  bench::Section("E1 / Table 1 + Section 3: dataset description");
  const data::TransactionDataset& ds = bench::PaperDataset();
  const data::DatasetStats stats = ds.ComputeStats();

  std::printf("Schema (Table 1):\n");
  for (const char* name : data::kAttributeNames) {
    std::printf("  %s\n", name);
  }

  bench::Section("Aggregate statistics (paper values in parentheses)");
  bench::Row("transactions (98,292)", stats.num_transactions);
  bench::Row("distinct lat/long pairs (4,038)", stats.distinct_locations);
  bench::Row("distinct origins (1,797)", stats.distinct_origins);
  bench::Row("distinct destinations (3,770)", stats.distinct_destinations);
  bench::Row("distinct OD pairs (20,900)", stats.distinct_od_pairs);
  bench::Row("first pickup date", FormatDayNumber(stats.first_pickup_day));
  bench::Row("last pickup date", FormatDayNumber(stats.last_pickup_day));
  bench::Row("gross weight min (lb)", stats.weight.min);
  bench::Row("gross weight max (~1,000,000 lb / 500 tons)",
             stats.weight.max);
  bench::Row("distance mean (mi)", stats.distance.mean);
  bench::Row("transit hours mean", stats.transit_hours.mean);
  bench::Row("truckload shipments", stats.num_truckload);
  bench::Row("less-than-truckload shipments",
             stats.num_less_than_truckload);

  // Degrees on the distinct-OD-pair graph (multigraph edges deduplicated
  // down to one edge per ordered location pair).
  data::OdGraphOptions options;
  options.num_bins = 1;  // single label so dedup keeps one edge per pair
  data::OdGraph od = data::BuildOdGraph(ds, options);
  graph::DeduplicateEdges(&od.graph);
  // The paper's degree statistics run over origins (out-degree >= 1) and
  // destinations (in-degree >= 1) respectively.
  std::size_t min_out = ~std::size_t{0}, max_out = 0, sum_out = 0,
              origins = 0;
  std::size_t min_in = ~std::size_t{0}, max_in = 0, sum_in = 0, dests = 0;
  for (graph::VertexId v = 0; v < od.graph.num_vertices(); ++v) {
    const std::size_t out = od.graph.OutDegree(v);
    const std::size_t in = od.graph.InDegree(v);
    if (out > 0) {
      ++origins;
      sum_out += out;
      min_out = std::min(min_out, out);
      max_out = std::max(max_out, out);
    }
    if (in > 0) {
      ++dests;
      sum_in += in;
      min_in = std::min(min_in, in);
      max_in = std::max(max_in, in);
    }
  }
  bench::Section("OD-pair graph degrees (paper: out 1/2373/12, in 1/832/6)");
  bench::Row("out-degree min over origins", min_out);
  bench::Row("out-degree max", max_out);
  bench::Row("out-degree avg",
             static_cast<double>(sum_out) / static_cast<double>(origins));
  bench::Row("in-degree min over destinations", min_in);
  bench::Row("in-degree max", max_in);
  bench::Row("in-degree avg",
             static_cast<double>(sum_in) / static_cast<double>(dests));
  return 0;
}
