// Experiment E10 — Section 6.1 / Table 3 + Figure 4: temporal FSG on the
// low-activity days.
//
// The paper limited the data to dates with fewer than 200 distinct vertex
// labels (Table 3: 53 transactions, 7 edge labels, 154 vertex labels, avg
// 4 edges / 5 vertices, max 8 / 9) and ran FSG at 5 % support, finding 22
// frequent patterns, mostly small, the largest a three-edge hub-and-spoke
// with weight-range edge labels (Figure 4). Reproduction targets: a small
// filtered transaction set of tiny graphs; on the order of tens of
// frequent patterns at 5 % support; the largest ones hub-and-spoke-shaped
// with weight-interval labels.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/miner.h"
#include "pattern/render.h"

using namespace tnmine;

int main() {
  bench::RunReportScope report("bench_fig4_temporal_fsg");
  bench::Section("E10 / Table 3: days with < 200 distinct vertex labels");
  core::TemporalMiningOptions options;
  options.partition.max_distinct_vertex_labels = 200;
  options.partition.split_components = true;
  options.partition.remove_single_edge_transactions = true;
  options.partition.deduplicate_edges = true;
  options.min_support_fraction = 0.05;
  options.max_pattern_edges = 4;
  Stopwatch sw;
  const core::TemporalMiningResult result =
      core::MineTemporalPatterns(bench::PaperDataset(), options);
  bench::Row("days filtered out", result.partition.days_filtered_out);
  bench::Row("input transactions (paper: 53)",
             result.stats.num_transactions);
  bench::Row("distinct edge labels (paper: 7)",
             result.stats.distinct_edge_labels);
  bench::Row("distinct vertex labels (paper: 154)",
             result.stats.distinct_vertex_labels);
  bench::Row("avg edges per transaction (paper: 4)", result.stats.avg_edges);
  bench::Row("avg vertices per transaction (paper: 5)",
             result.stats.avg_vertices);
  bench::Row("max edges (paper: 8)", result.stats.max_edges);
  bench::Row("max vertices (paper: 9)", result.stats.max_vertices);

  bench::Section("FSG at 5 % support (paper: 22 frequent patterns)");
  bench::Row("absolute support", result.absolute_min_support);
  bench::Row("frequent patterns (paper: 22)", result.registry.size());
  bench::Row("runtime seconds", sw.ElapsedSeconds());

  std::printf("\nLargest patterns (Figure 4 analogue; weight-range edge "
              "labels):\n");
  const auto sorted = result.registry.SortedBySupport();
  std::size_t largest = 0;
  for (const auto* p : sorted) {
    largest = std::max(largest, p->graph.num_edges());
  }
  std::size_t shown = 0;
  for (const auto* p : sorted) {
    if (p->graph.num_edges() == largest && shown < 3) {
      std::printf("%s",
                  pattern::RenderPattern(*p,
                                         &result.partition.discretizer)
                      .c_str());
      ++shown;
    }
  }
  std::printf("\nPaper's largest pattern was a 3-edge hub-and-spoke; ours "
              "has %zu edges.\n", largest);
  return 0;
}
