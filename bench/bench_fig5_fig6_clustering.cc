// Experiment E14 — Section 7.3 / Figures 5 and 6: EM clustering.
//
// The paper ran Weka's EM on the undiscretized dataset; it produced nine
// clusters ranging from 3 instances (cluster 0 — the air-freight
// outliers: >3,000 miles in <24 hours, Pacific Northwest to Hawaii) to
// 19,386; Figure 6 plots each cluster's mean TOTAL_DISTANCE and mean
// TRANSIT_HOURS, splitting the clusters into "short-haul" and "long-haul"
// groups. Reproduction targets: a tiny outlier cluster with mean distance
// >3,000 mi and mean hours <24; the remaining clusters separating into
// short-haul and long-haul bands.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "ml/em.h"

using namespace tnmine;

int main() {
  bench::RunReportScope report("bench_fig5_fig6_clustering");
  const auto& ds = bench::PaperDataset();
  const ml::AttributeTable table = ml::AttributeTable::FromTransactions(ds);
  std::vector<int> numeric;
  for (const char* name :
       {"ORIGIN_LATITUDE", "ORIGIN_LONGITUDE", "DEST_LATITUDE",
        "DEST_LONGITUDE", "TOTAL_DISTANCE", "GROSS_WEIGHT",
        "MOVE_TRANSIT_HOURS"}) {
    numeric.push_back(table.AttributeIndex(name));
  }

  bench::Section("E14 / Figure 5: EM with k = 9 (the paper's cluster "
                 "count)");
  ml::EmOptions options;
  options.num_clusters = 9;
  options.seed = 2005;
  // Farthest-point seeding guarantees the far-flung air-freight shipments
  // get their own component, as Weka's EM gave the paper its cluster 0.
  options.farthest_point_init = true;
  Stopwatch sw;
  const ml::EmResult em = ml::FitEm(table, numeric, options);
  bench::Row("rows", table.num_rows());
  bench::Row("EM iterations", static_cast<std::size_t>(em.iterations));
  bench::Row("log-likelihood", em.log_likelihood);
  bench::Row("runtime seconds", sw.ElapsedSeconds());

  const int dist = table.AttributeIndex("TOTAL_DISTANCE");
  const int hours = table.AttributeIndex("MOVE_TRANSIT_HOURS");
  std::printf(
      "\nFigure 6 series (per cluster: size, mean TOTAL_DISTANCE, mean "
      "TRANSIT_HOURS):\n");
  std::printf("%-9s %-10s %-16s %-14s %s\n", "cluster", "size",
              "mean distance", "mean hours", "band");
  int outlier_cluster = -1;
  for (int c = 0; c < em.num_clusters; ++c) {
    const std::size_t size = ml::ClusterSize(em, c);
    const double mean_distance = ml::ClusterMean(table, em, dist, c);
    const double mean_hours = ml::ClusterMean(table, em, hours, c);
    const bool outlier = size <= 10 && mean_distance > 3000.0 &&
                         mean_hours < 24.0;
    if (outlier) outlier_cluster = c;
    const char* band = outlier ? "air-freight outliers"
                      : mean_distance < 700.0 ? "short-haul"
                                              : "long-haul";
    std::printf("%-9d %-10zu %-16.0f %-14.1f %s\n", c, size, mean_distance,
                mean_hours, band);
  }
  if (outlier_cluster >= 0) {
    std::printf(
        "\nCluster %d reproduces the paper's cluster 0: a handful of "
        "shipments that\n'traveled over 3,000 miles in less than 24 hours' "
        "— air freight from the\nPacific Northwest to Hawaii.\n",
        outlier_cluster);
  } else {
    std::printf("\nNo dedicated air-freight outlier cluster emerged at "
                "k=9 with this seed.\n");
  }

  bench::Section("E14b: Weka-style automatic cluster-count selection "
                 "(cross-validated likelihood)");
  ml::EmOptions auto_options;
  auto_options.num_clusters = 0;
  auto_options.max_clusters = 12;
  auto_options.cv_folds = 3;
  auto_options.seed = 2005;
  // CV selection refits EM many times; a row subsample keeps this quick
  // while preserving the density structure.
  ml::AttributeTable sample;
  {
    Rng rng(7);
    ml::AttributeTable rest;
    table.Split(0.1, rng, &rest, &sample);  // `sample` = 10 % of rows
    (void)rest;
  }
  sw.Reset();
  const ml::EmResult auto_em = ml::FitEm(sample, numeric, auto_options);
  bench::Row("subsample rows", sample.num_rows());
  bench::Row("selected clusters (paper: 9)",
             static_cast<std::size_t>(auto_em.num_clusters));
  bench::Row("runtime seconds", sw.ElapsedSeconds());
  return 0;
}
