// Experiment E2 — Section 5.1 / Figure 1: SUBDUE with the MDL principle
// on a ~100-vertex subgraph of OD_GW.
//
// The paper carved a 100-vertex / 561-edge subgraph of OD_GW (uniform
// vertex labels, 7 gross-weight edge bins), ran SUBDUE release 5.1 with
// MDL, beam 4, best 3, no overlap — it took 3.25 hours and returned small
// patterns (Figure 1), including a deadheading chain. The expectation to
// reproduce: MDL on uniformly-labeled data favors *small* (1-2 edge)
// patterns because frequent small substructures compress better than the
// infrequent large ones.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/flow_balance.h"
#include "data/od_graph.h"
#include "graph/algorithms.h"
#include "pattern/render.h"
#include "subdue/subdue.h"

using namespace tnmine;

int main() {
  bench::RunReportScope report("bench_fig1_subdue_mdl");
  bench::Section("E2 / Figure 1: SUBDUE (MDL) on an OD_GW subgraph");
  const data::OdGraph od = data::BuildOdGw(bench::PaperDataset());
  const graph::LabeledGraph g = bench::RegionSubgraph(od.graph, 100, 100);
  bench::Row("subgraph vertices (paper: 100)", g.num_vertices());
  bench::Row("subgraph edges (paper: 561)", g.num_edges());

  subdue::SubdueOptions options;
  options.method = subdue::EvalMethod::kMdl;
  options.beam_width = 4;
  options.num_best = 3;
  options.allow_overlap = false;
  options.limit = 300;
  options.max_instances = 1500;
  Stopwatch sw;
  const subdue::SubdueResult result = subdue::DiscoverSubstructures(g,
                                                                    options);
  bench::Row("runtime seconds (paper: ~11,700 s on a 2005 Sparc)",
             sw.ElapsedSeconds());
  bench::Row("substructures evaluated", result.substructures_evaluated);
  bench::Row("DL(G) bits", result.base_cost);

  bench::Section("Best 3 substructures (expect small, Figure-1-like)");
  for (const subdue::Substructure& sub : result.best) {
    std::printf(
        "value=%.4f instances=%zu (non-overlapping=%zu) vertices=%zu "
        "edges=%zu\n",
        sub.value, sub.instances.size(), sub.non_overlapping_instances,
        sub.pattern.num_vertices(), sub.pattern.num_edges());
    std::printf("%s", pattern::RenderGraph(sub.pattern,
                                           &od.discretizer).c_str());
  }
  std::printf(
      "\nPaper's qualitative finding reproduced iff the best MDL patterns "
      "stay small\n(1-2 edges) on this uniformly-labeled graph.\n");

  // The paper reads its Figure-1 pattern as deadheading ("significant
  // traffic from node 2 to node 4 via node 3, but not much return
  // traffic"). Verify the phenomenon exists in the data directly.
  bench::Section("Deadhead check: one-directional lanes in the dataset");
  core::LaneBalanceOptions lane_options;
  lane_options.min_forward_shipments = 40;
  lane_options.min_imbalance = 0.9;
  const auto lanes =
      core::FindDeadheadLanes(bench::PaperDataset(), lane_options);
  bench::Row("lanes with >=40 loads out and >=90% imbalance",
             lanes.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(3, lanes.size()); ++i) {
    std::printf("  %s\n", core::ToString(lanes[i]).c_str());
  }
  return 0;
}
