// Result-cache semantics (DESIGN.md §14): hit on an identical key, miss
// on any delta, LRU eviction bounded by MemoryBytes(), invalidation via
// Clear(), and a zero capacity disabling the cache entirely. The
// end-to-end keying (snapshot fingerprint × op × canonical params) is
// covered by server_test; this file pins the container itself.

#include "server/result_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace tnmine::server {
namespace {

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(1 << 20);
  std::string payload;
  EXPECT_FALSE(cache.Lookup("k1", &payload));
  cache.Insert("k1", "value-1");
  ASSERT_TRUE(cache.Lookup("k1", &payload));
  EXPECT_EQ(payload, "value-1");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ResultCacheTest, DistinctKeysAreDistinctEntries) {
  ResultCache cache(1 << 20);
  cache.Insert("op|fp|v1|{\"support\":10}", "a");
  cache.Insert("op|fp|v1|{\"support\":11}", "b");
  std::string payload;
  ASSERT_TRUE(cache.Lookup("op|fp|v1|{\"support\":10}", &payload));
  EXPECT_EQ(payload, "a");
  ASSERT_TRUE(cache.Lookup("op|fp|v1|{\"support\":11}", &payload));
  EXPECT_EQ(payload, "b");
  EXPECT_FALSE(cache.Lookup("op|fp|v2|{\"support\":10}", &payload));
}

TEST(ResultCacheTest, InsertSameKeyRefreshes) {
  ResultCache cache(1 << 20);
  cache.Insert("k", "old");
  cache.Insert("k", "new");
  EXPECT_EQ(cache.entries(), 1u);
  std::string payload;
  ASSERT_TRUE(cache.Lookup("k", &payload));
  EXPECT_EQ(payload, "new");
}

TEST(ResultCacheTest, LruEvictionUnderSmallCap) {
  // Each entry costs key + payload + fixed overhead; size the cap so
  // exactly two of these entries fit.
  const std::string big(300, 'x');
  ResultCache cache(2 * (1 + big.size() + 128));
  cache.Insert("a", big);
  cache.Insert("b", big);
  EXPECT_EQ(cache.entries(), 2u);

  // Touch "a" so "b" is the least recently used entry.
  std::string payload;
  ASSERT_TRUE(cache.Lookup("a", &payload));
  cache.Insert("c", big);

  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Lookup("a", &payload));
  EXPECT_FALSE(cache.Lookup("b", &payload));
  EXPECT_TRUE(cache.Lookup("c", &payload));
  EXPECT_LE(cache.MemoryBytes(), cache.capacity_bytes());
}

TEST(ResultCacheTest, OversizedEntryIsNotAdmitted) {
  ResultCache cache(64);
  cache.Insert("k", std::string(1024, 'x'));
  EXPECT_EQ(cache.entries(), 0u);
  std::string payload;
  EXPECT_FALSE(cache.Lookup("k", &payload));
}

TEST(ResultCacheTest, ClearInvalidatesEverything) {
  ResultCache cache(1 << 20);
  cache.Insert("a", "1");
  cache.Insert("b", "2");
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.MemoryBytes(), 0u);
  EXPECT_EQ(cache.invalidations(), 1u);
  std::string payload;
  EXPECT_FALSE(cache.Lookup("a", &payload));
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Insert("k", "v");
  EXPECT_EQ(cache.entries(), 0u);
  std::string payload;
  EXPECT_FALSE(cache.Lookup("k", &payload));
}

}  // namespace
}  // namespace tnmine::server
