#include "ml/attribute_table.h"

#include <gtest/gtest.h>

#include "data/generator.h"

namespace tnmine::ml {
namespace {

AttributeTable TinyTable() {
  AttributeTable t;
  t.AddNumericAttribute("x");
  t.AddNominalAttribute("color", {"red", "green"});
  t.AddRow({1.5, 0});
  t.AddRow({2.5, 1});
  t.AddRow({3.5, 1});
  return t;
}

TEST(AttributeTableTest, BasicAccess) {
  const AttributeTable t = TinyTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_attributes(), 2);
  EXPECT_EQ(t.attribute(0).name, "x");
  EXPECT_EQ(t.attribute(0).kind, AttrKind::kNumeric);
  EXPECT_EQ(t.attribute(1).kind, AttrKind::kNominal);
  EXPECT_DOUBLE_EQ(t.value(1, 0), 2.5);
  EXPECT_EQ(t.NominalValue(0, 1), "red");
  EXPECT_EQ(t.NominalValue(2, 1), "green");
  EXPECT_EQ(t.AttributeIndex("color"), 1);
  EXPECT_EQ(t.AttributeIndex("missing"), -1);
  EXPECT_EQ(t.Column(0), (std::vector<double>{1.5, 2.5, 3.5}));
}

TEST(AttributeTableTest, FromTransactionsSchema) {
  const auto ds =
      data::GenerateTransportData(data::GeneratorConfig::SmallScale());
  const AttributeTable t = AttributeTable::FromTransactions(ds);
  EXPECT_EQ(t.num_rows(), ds.size());
  EXPECT_EQ(t.num_attributes(), 8);  // dates and ID excluded (Section 7)
  EXPECT_EQ(t.AttributeIndex("REQ_PICKUP_DT"), -1);
  EXPECT_EQ(t.AttributeIndex("ID"), -1);
  EXPECT_GE(t.AttributeIndex("GROSS_WEIGHT"), 0);
  const int mode = t.AttributeIndex("TRANS_MODE");
  ASSERT_GE(mode, 0);
  EXPECT_EQ(t.attribute(mode).kind, AttrKind::kNominal);
  EXPECT_EQ(t.attribute(mode).values,
            (std::vector<std::string>{"TL", "LTL"}));
}

TEST(AttributeTableTest, DiscretizedMakesEverythingNominal) {
  const AttributeTable t = TinyTable();
  const AttributeTable d = t.Discretized(2, /*equal_frequency=*/false);
  EXPECT_EQ(d.num_rows(), t.num_rows());
  for (int a = 0; a < d.num_attributes(); ++a) {
    EXPECT_EQ(d.attribute(a).kind, AttrKind::kNominal);
  }
  // x column: [1.5, 3.5] into 2 equal-width bins, cut at 2.5 (closed
  // right): rows 0 and 1 -> bin 0, row 2 -> bin 1.
  EXPECT_EQ(d.value(0, 0), 0.0);
  EXPECT_EQ(d.value(1, 0), 0.0);
  EXPECT_EQ(d.value(2, 0), 1.0);
  // Nominal column untouched.
  EXPECT_EQ(d.NominalValue(2, 1), "green");
  // Interval names are human-readable.
  EXPECT_NE(d.attribute(0).values[0].find("(-inf"), std::string::npos);
}

TEST(AttributeTableTest, SplitPartitionsRows) {
  AttributeTable t;
  t.AddNumericAttribute("x");
  for (int i = 0; i < 100; ++i) t.AddRow({static_cast<double>(i)});
  Rng rng(3);
  AttributeTable train, test;
  t.Split(0.3, rng, &train, &test);
  EXPECT_EQ(train.num_rows(), 70u);
  EXPECT_EQ(test.num_rows(), 30u);
  // No row lost or duplicated.
  std::vector<double> all;
  for (std::size_t i = 0; i < train.num_rows(); ++i) {
    all.push_back(train.value(i, 0));
  }
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    all.push_back(test.value(i, 0));
  }
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(all[i], i);
}

}  // namespace
}  // namespace tnmine::ml
