// Additional cross-module property tests: induced matching against brute
// force, generator calendar texture, partitioning of tombstoned inputs,
// and the equal-frequency binning switches.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <tuple>
#include <vector>

#include "common/date.h"
#include "common/random.h"
#include "data/generator.h"
#include "data/od_graph.h"
#include "iso/vf2.h"
#include "partition/split_graph.h"
#include "partition/temporal.h"

namespace tnmine {
namespace {

using graph::EdgeId;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

/// Brute-force induced-subgraph check: every injective label-preserving
/// assignment where each mapped pair carries exactly the pattern's edges.
bool BruteForceInduced(const LabeledGraph& pattern,
                       const LabeledGraph& target) {
  const std::size_t np = pattern.num_vertices();
  const std::size_t nt = target.num_vertices();
  if (np > nt) return false;
  std::vector<VertexId> assignment(np);
  std::vector<char> used(nt, 0);
  auto edge_counts = [](const LabeledGraph& g, VertexId a, VertexId b) {
    std::map<Label, int> counts;
    g.ForEachOutEdge(a, [&](EdgeId e) {
      if (g.edge(e).dst == b) ++counts[g.edge(e).label];
    });
    return counts;
  };
  std::function<bool(std::size_t)> rec = [&](std::size_t i) -> bool {
    if (i == np) {
      for (VertexId p = 0; p < np; ++p) {
        for (VertexId q = 0; q < np; ++q) {
          if (edge_counts(pattern, p, q) !=
              edge_counts(target, assignment[p], assignment[q])) {
            return false;
          }
        }
      }
      return true;
    }
    for (VertexId t = 0; t < nt; ++t) {
      if (used[t] ||
          target.vertex_label(t) != pattern.vertex_label(
                                        static_cast<VertexId>(i))) {
        continue;
      }
      used[t] = 1;
      assignment[i] = t;
      if (rec(i + 1)) return true;
      used[t] = 0;
    }
    return false;
  };
  return rec(0);
}

class InducedRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InducedRandomTest, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    LabeledGraph target;
    const std::size_t nt = 4 + rng.NextBounded(2);
    for (std::size_t i = 0; i < nt; ++i) {
      target.AddVertex(static_cast<Label>(rng.NextBounded(2)));
    }
    const std::size_t et = 2 + rng.NextBounded(6);
    for (std::size_t i = 0; i < et; ++i) {
      target.AddEdge(static_cast<VertexId>(rng.NextBounded(nt)),
                     static_cast<VertexId>(rng.NextBounded(nt)),
                     static_cast<Label>(rng.NextBounded(2)));
    }
    LabeledGraph pattern;
    const std::size_t np = 2 + rng.NextBounded(2);
    for (std::size_t i = 0; i < np; ++i) {
      pattern.AddVertex(static_cast<Label>(rng.NextBounded(2)));
    }
    const std::size_t ep = 1 + rng.NextBounded(2);
    for (std::size_t i = 0; i < ep; ++i) {
      pattern.AddEdge(static_cast<VertexId>(rng.NextBounded(np)),
                      static_cast<VertexId>(rng.NextBounded(np)),
                      static_cast<Label>(rng.NextBounded(2)));
    }
    ASSERT_EQ(iso::ContainsInducedSubgraph(pattern, target),
              BruteForceInduced(pattern, target))
        << pattern.DebugString() << target.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InducedRandomTest,
                         ::testing::Values(51, 52, 53, 54, 55));

TEST(GeneratorCalendarTest, QuietWeekAndWeekendsRunLight) {
  data::GeneratorConfig config = data::GeneratorConfig::SmallScale();
  config.num_days = 70;
  config.seed = 5;
  const auto ds = data::GenerateTransportData(config);
  const std::int64_t start = DayNumberFromCivil(
      {config.start_year, config.start_month, config.start_day_of_month});
  std::map<std::int64_t, std::size_t> pickups_by_day;
  for (const auto& t : ds.transactions()) {
    ++pickups_by_day[t.req_pickup_day];
  }
  double weekday_total = 0, weekday_days = 0;
  double weekend_total = 0, weekend_days = 0;
  for (std::int64_t d = start; d < start + 70; ++d) {
    const std::size_t count =
        pickups_by_day.contains(d) ? pickups_by_day[d] : 0;
    const std::size_t index = static_cast<std::size_t>(d - start);
    const bool quiet_week = index >= 35 && index < 42;  // num_days/2
    if (quiet_week) continue;
    if (DayOfWeek(d) >= 5) {
      weekend_total += static_cast<double>(count);
      ++weekend_days;
    } else {
      weekday_total += static_cast<double>(count);
      ++weekday_days;
    }
  }
  const double weekday_avg = weekday_total / weekday_days;
  const double weekend_avg = weekend_total / weekend_days;
  EXPECT_LT(weekend_avg, 0.4 * weekday_avg);
  // Quiet-week interior days run nearly empty.
  double quiet_total = 0;
  for (std::size_t i = 36; i < 41; ++i) {
    const std::int64_t d = start + static_cast<std::int64_t>(i);
    quiet_total += pickups_by_day.contains(d)
                       ? static_cast<double>(pickups_by_day[d])
                       : 0.0;
  }
  EXPECT_LT(quiet_total / 5.0, 0.2 * weekday_avg);
}

TEST(SplitGraphTest, HandlesTombstonedInput) {
  Rng rng(7);
  LabeledGraph g;
  for (int i = 0; i < 30; ++i) g.AddVertex(0);
  std::vector<EdgeId> edges;
  for (int i = 0; i < 80; ++i) {
    edges.push_back(g.AddEdge(static_cast<VertexId>(rng.NextBounded(30)),
                              static_cast<VertexId>(rng.NextBounded(30)),
                              static_cast<Label>(rng.NextBounded(3))));
  }
  for (int i = 0; i < 20; ++i) {
    g.RemoveEdge(edges[static_cast<std::size_t>(i) * 4]);
  }
  partition::SplitOptions options;
  options.num_partitions = 5;
  const auto parts = partition::SplitGraph(g, options);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.num_edges();
  EXPECT_EQ(total, g.num_edges());  // live edges only, each exactly once
}

TEST(BinningSwitchTest, OdGraphEqualFrequencyFillsBins) {
  const auto ds =
      data::GenerateTransportData(data::GeneratorConfig::SmallScale());
  data::OdGraphOptions ew;
  ew.attribute = data::EdgeAttribute::kGrossWeight;
  ew.num_bins = 7;
  ew.equal_frequency = false;
  data::OdGraphOptions ef = ew;
  ef.equal_frequency = true;
  const auto width_graph = data::BuildOdGraph(ds, ew);
  const auto freq_graph = data::BuildOdGraph(ds, ef);
  // Equal-width on heavy-tailed weights concentrates mass in few labels;
  // equal-frequency populates all seven.
  EXPECT_EQ(freq_graph.graph.CountDistinctEdgeLabels(), 7u);
  EXPECT_LE(width_graph.graph.CountDistinctEdgeLabels(), 7u);
  // Count the share of the most common label under each scheme.
  auto top_share = [](const data::OdGraph& og) {
    std::map<Label, std::size_t> counts;
    og.graph.ForEachEdge(
        [&](EdgeId e) { ++counts[og.graph.edge(e).label]; });
    std::size_t top = 0;
    for (const auto& [label, c] : counts) top = std::max(top, c);
    return static_cast<double>(top) /
           static_cast<double>(og.graph.num_edges());
  };
  EXPECT_GT(top_share(width_graph), top_share(freq_graph));
}

TEST(BinningSwitchTest, TemporalEqualWidthOption) {
  const auto ds =
      data::GenerateTransportData(data::GeneratorConfig::SmallScale());
  partition::TemporalOptions freq;
  freq.equal_frequency = true;
  partition::TemporalOptions width;
  width.equal_frequency = false;
  const auto a = partition::PartitionByActiveDay(ds, freq);
  const auto b = partition::PartitionByActiveDay(ds, width);
  EXPECT_NE(a.discretizer.cut_points(), b.discretizer.cut_points());
}

}  // namespace
}  // namespace tnmine
