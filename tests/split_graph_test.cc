#include "partition/split_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "data/generator.h"
#include "data/od_graph.h"
#include "graph/algorithms.h"

namespace tnmine::partition {
namespace {

using graph::EdgeId;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

LabeledGraph RandomGraph(std::uint64_t seed, std::size_t n, std::size_t m) {
  Rng rng(seed);
  LabeledGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    g.AddVertex(static_cast<Label>(rng.NextBounded(3)));
  }
  for (std::size_t i = 0; i < m; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(n)),
              static_cast<VertexId>(rng.NextBounded(n)),
              static_cast<Label>(rng.NextBounded(4)));
  }
  return g;
}

/// Multiset of (src label, dst label, edge label) triples — partition-
/// invariant because SplitGraph preserves labels even though ids change.
std::multiset<std::tuple<Label, Label, Label>> EdgeLabelMultiset(
    const LabeledGraph& g) {
  std::multiset<std::tuple<Label, Label, Label>> out;
  g.ForEachEdge([&](EdgeId e) {
    const auto& edge = g.edge(e);
    out.insert({g.vertex_label(edge.src), g.vertex_label(edge.dst),
                edge.label});
  });
  return out;
}

TEST(SplitGraphTest, EmptyGraphGivesNoPartitions) {
  LabeledGraph g;
  g.AddVertex(0);
  SplitOptions options;
  EXPECT_TRUE(SplitGraph(g, options).empty());
}

class SplitGraphPropertyTest
    : public ::testing::TestWithParam<std::tuple<SplitStrategy, int>> {};

TEST_P(SplitGraphPropertyTest, EdgePartitionIsExact) {
  const auto [strategy, k] = GetParam();
  const LabeledGraph g = RandomGraph(42, 60, 150);
  SplitOptions options;
  options.strategy = strategy;
  options.num_partitions = static_cast<std::size_t>(k);
  options.seed = 7;
  const std::vector<LabeledGraph> parts = SplitGraph(g, options);
  ASSERT_FALSE(parts.empty());
  // Every edge appears in exactly one partition: the union of the label
  // multisets equals the original's.
  std::multiset<std::tuple<Label, Label, Label>> combined;
  std::size_t total_edges = 0;
  for (const LabeledGraph& part : parts) {
    total_edges += part.num_edges();
    for (const auto& t : EdgeLabelMultiset(part)) combined.insert(t);
    // No orphaned vertices.
    for (VertexId v = 0; v < part.num_vertices(); ++v) {
      EXPECT_GT(part.Degree(v), 0u);
    }
    EXPECT_TRUE(part.IsDense());
  }
  EXPECT_EQ(total_edges, g.num_edges());
  EXPECT_EQ(combined, EdgeLabelMultiset(g));
}

TEST_P(SplitGraphPropertyTest, PartitionSizesNearTarget) {
  const auto [strategy, k] = GetParam();
  const LabeledGraph g = RandomGraph(99, 100, 400);
  SplitOptions options;
  options.strategy = strategy;
  options.num_partitions = static_cast<std::size_t>(k);
  const std::vector<LabeledGraph> parts = SplitGraph(g, options);
  // The algorithm aims at |E|/k per partition; allow generous slack for
  // disconnection effects, but no partition may exceed ~2x the target.
  const std::size_t target = g.num_edges() / static_cast<std::size_t>(k);
  for (const LabeledGraph& part : parts) {
    EXPECT_LE(part.num_edges(), 2 * target + 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategyAndK, SplitGraphPropertyTest,
    ::testing::Combine(::testing::Values(SplitStrategy::kBreadthFirst,
                                         SplitStrategy::kDepthFirst),
                       ::testing::Values(2, 4, 8, 16)));

TEST(SplitGraphTest, DeterministicForSeed) {
  const LabeledGraph g = RandomGraph(5, 40, 90);
  SplitOptions options;
  options.seed = 11;
  const auto a = SplitGraph(g, options);
  const auto b = SplitGraph(g, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].StructurallyEqual(b[i]));
  }
}

TEST(SplitGraphTest, DifferentSeedsUsuallyDiffer) {
  const LabeledGraph g = RandomGraph(5, 40, 90);
  SplitOptions options;
  options.seed = 1;
  const auto a = SplitGraph(g, options);
  options.seed = 2;
  const auto b = SplitGraph(g, options);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = !a[i].StructurallyEqual(b[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(SplitGraphTest, BreadthFirstKeepsStarTogether) {
  // A star with 8 spokes plus a long tail elsewhere: when the star's hub
  // seeds a BF partition with budget >= 8, all spokes land together.
  LabeledGraph g;
  const VertexId hub = g.AddVertex(0);
  for (int i = 0; i < 8; ++i) g.AddEdge(hub, g.AddVertex(0), 1);
  SplitOptions options;
  options.strategy = SplitStrategy::kBreadthFirst;
  options.num_partitions = 1;
  const auto parts = SplitGraph(g, options);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].num_edges(), 8u);
}

TEST(SplitGraphTest, DepthFirstFollowsChains) {
  // A pure directed path: DF partitioning into 2 parts must produce parts
  // that are themselves paths (each vertex has degree <= 2).
  LabeledGraph g;
  VertexId prev = g.AddVertex(0);
  for (int i = 0; i < 20; ++i) {
    const VertexId next = g.AddVertex(0);
    g.AddEdge(prev, next, 1);
    prev = next;
  }
  SplitOptions options;
  options.strategy = SplitStrategy::kDepthFirst;
  options.num_partitions = 2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    options.seed = seed;
    for (const LabeledGraph& part : SplitGraph(g, options)) {
      for (VertexId v = 0; v < part.num_vertices(); ++v) {
        EXPECT_LE(part.Degree(v), 2u);
      }
    }
  }
}

TEST(SplitGraphTest, WorksOnRealOdGraph) {
  const data::TransactionDataset ds =
      data::GenerateTransportData(data::GeneratorConfig::SmallScale());
  const data::OdGraph od = data::BuildOdGw(ds);
  SplitOptions options;
  options.num_partitions = 5;
  const auto parts = SplitGraph(od.graph, options);
  std::size_t total = 0;
  for (const auto& part : parts) total += part.num_edges();
  EXPECT_EQ(total, od.graph.num_edges());
}

}  // namespace
}  // namespace tnmine::partition
