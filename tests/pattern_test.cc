#include "pattern/pattern.h"

#include <gtest/gtest.h>

#include "iso/canonical.h"
#include "pattern/render.h"

namespace tnmine::pattern {
namespace {

using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

LabeledGraph Edge1(Label a, Label b, Label e) {
  LabeledGraph g;
  const VertexId va = g.AddVertex(a);
  const VertexId vb = g.AddVertex(b);
  g.AddEdge(va, vb, e);
  return g;
}

FrequentPattern MakePattern(LabeledGraph g, std::size_t support,
                            std::vector<std::uint32_t> tids = {}) {
  FrequentPattern p;
  p.graph = std::move(g);
  p.support = support;
  p.tids = TidSet::FromSorted(std::move(tids),
                              /*universe=*/0);
  return p;
}

TEST(PatternRegistryTest, InsertAndFind) {
  PatternRegistry reg;
  EXPECT_TRUE(reg.InsertOrMerge(MakePattern(Edge1(0, 1, 2), 5)));
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.Contains(Edge1(0, 1, 2)));
  EXPECT_FALSE(reg.Contains(Edge1(0, 1, 3)));
}

TEST(PatternRegistryTest, IsomorphicGraphsMerge) {
  PatternRegistry reg;
  // Same pattern built with vertices in the opposite order.
  LabeledGraph mirrored;
  const VertexId b = mirrored.AddVertex(1);
  const VertexId a = mirrored.AddVertex(0);
  mirrored.AddEdge(a, b, 2);
  EXPECT_TRUE(reg.InsertOrMerge(MakePattern(Edge1(0, 1, 2), 5)));
  EXPECT_FALSE(reg.InsertOrMerge(MakePattern(mirrored, 9)));
  EXPECT_EQ(reg.size(), 1u);
  // Merge keeps the max support (Algorithm 1 union semantics).
  const FrequentPattern* p =
      reg.Find(iso::CanonicalCode(Edge1(0, 1, 2)));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->support, 9u);
}

TEST(PatternRegistryTest, MergeTidsUnions) {
  PatternRegistry reg;
  reg.InsertOrMerge(MakePattern(Edge1(0, 1, 2), 2, {1, 5}), true);
  reg.InsertOrMerge(MakePattern(Edge1(0, 1, 2), 2, {3, 5}), true);
  const FrequentPattern* p = reg.Find(iso::CanonicalCode(Edge1(0, 1, 2)));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->tids.ToVector(), (std::vector<std::uint32_t>{1, 3, 5}));
  EXPECT_EQ(p->support, 3u);
}

TEST(PatternRegistryTest, SortedBySupport) {
  PatternRegistry reg;
  reg.InsertOrMerge(MakePattern(Edge1(0, 1, 1), 3));
  reg.InsertOrMerge(MakePattern(Edge1(0, 1, 2), 9));
  reg.InsertOrMerge(MakePattern(Edge1(0, 1, 3), 6));
  const auto sorted = reg.SortedBySupport();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0]->support, 9u);
  EXPECT_EQ(sorted[1]->support, 6u);
  EXPECT_EQ(sorted[2]->support, 3u);
}

TEST(ShapeTest, ClassifiesFigures) {
  // Figure 2: hub with spokes.
  LabeledGraph star;
  const VertexId hub = star.AddVertex(0);
  for (int i = 0; i < 5; ++i) star.AddEdge(hub, star.AddVertex(0), i);
  EXPECT_EQ(ClassifyShape(star), PatternShape::kHubAndSpoke);

  // Figure 3: a chain.
  LabeledGraph chain;
  VertexId prev = chain.AddVertex(0);
  for (int i = 0; i < 4; ++i) {
    const VertexId next = chain.AddVertex(0);
    chain.AddEdge(prev, next, 1);
    prev = next;
  }
  EXPECT_EQ(ClassifyShape(chain), PatternShape::kChain);

  // Circular route.
  LabeledGraph cycle;
  std::vector<VertexId> vs;
  for (int i = 0; i < 4; ++i) vs.push_back(cycle.AddVertex(0));
  for (int i = 0; i < 4; ++i) cycle.AddEdge(vs[i], vs[(i + 1) % 4], 1);
  EXPECT_EQ(ClassifyShape(cycle), PatternShape::kCycle);

  // Tree with branching.
  LabeledGraph tree;
  const VertexId root = tree.AddVertex(0);
  const VertexId l = tree.AddVertex(0);
  const VertexId r = tree.AddVertex(0);
  tree.AddEdge(root, l, 1);
  tree.AddEdge(root, r, 1);
  tree.AddEdge(l, tree.AddVertex(0), 1);
  tree.AddEdge(l, tree.AddVertex(0), 1);
  EXPECT_EQ(ClassifyShape(tree), PatternShape::kTree);

  // Single edge.
  EXPECT_EQ(ClassifyShape(Edge1(0, 0, 1)), PatternShape::kSingleEdge);

  // Complex: cycle plus chord.
  LabeledGraph complex_g = cycle;
  complex_g.AddEdge(vs[0], vs[2], 7);
  EXPECT_EQ(ClassifyShape(complex_g), PatternShape::kComplex);
}

TEST(RenderTest, RendersEdgesAndSupport) {
  FrequentPattern p = MakePattern(Edge1(0, 0, 2), 243);
  const std::string text = RenderPattern(p);
  EXPECT_NE(text.find("support=243"), std::string::npos);
  EXPECT_NE(text.find("-[2]->"), std::string::npos);
  EXPECT_NE(text.find("single-edge"), std::string::npos);
}

TEST(RenderTest, IntervalLabelsWhenBinsGiven) {
  const Discretizer bins = Discretizer::FromCutPoints({6500.0, 13000.0});
  FrequentPattern p = MakePattern(Edge1(0, 0, 0), 10);
  const std::string text = RenderPattern(p, &bins);
  EXPECT_NE(text.find("(-inf, 6500]"), std::string::npos);
}

TEST(RenderTest, VertexLabelsShownWhenNotUniform) {
  FrequentPattern p = MakePattern(Edge1(4, 7, 1), 2);
  const std::string text = RenderPattern(p);
  EXPECT_NE(text.find("(L4)"), std::string::npos);
  EXPECT_NE(text.find("(L7)"), std::string::npos);
}

}  // namespace
}  // namespace tnmine::pattern
