#include "gspan/dfs_code.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/random.h"
#include "iso/canonical.h"

namespace tnmine::gspan {
namespace {

using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

LabeledGraph Permute(const LabeledGraph& g,
                     const std::vector<VertexId>& perm) {
  LabeledGraph out;
  std::vector<VertexId> inverse(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inverse[perm[i]] = static_cast<VertexId>(i);
  }
  for (std::size_t i = 0; i < perm.size(); ++i) {
    out.AddVertex(g.vertex_label(inverse[i]));
  }
  g.ForEachEdge([&](graph::EdgeId e) {
    const auto& edge = g.edge(e);
    out.AddEdge(perm[edge.src], perm[edge.dst], edge.label);
  });
  return out;
}

/// Random connected graph: random tree plus extra edges.
LabeledGraph RandomConnected(Rng& rng, std::size_t vertices,
                             std::size_t extra_edges, int vlabels,
                             int elabels) {
  LabeledGraph g;
  for (std::size_t i = 0; i < vertices; ++i) {
    g.AddVertex(static_cast<Label>(rng.NextBounded(vlabels)));
  }
  for (VertexId v = 1; v < vertices; ++v) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(v));
    if (rng.NextBool()) {
      g.AddEdge(u, v, static_cast<Label>(rng.NextBounded(elabels)));
    } else {
      g.AddEdge(v, u, static_cast<Label>(rng.NextBounded(elabels)));
    }
  }
  for (std::size_t i = 0; i < extra_edges; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(vertices)),
              static_cast<VertexId>(rng.NextBounded(vertices)),
              static_cast<Label>(rng.NextBounded(elabels)));
  }
  return g;
}

TEST(DfsCodeTest, SingleEdge) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(3);
  const VertexId b = g.AddVertex(5);
  g.AddEdge(a, b, 7);
  const DfsCode code = MinimalDfsCode(g);
  ASSERT_EQ(code.size(), 1u);
  EXPECT_EQ(code.edges()[0].from, 0u);
  EXPECT_EQ(code.edges()[0].to, 1u);
  EXPECT_EQ(code.edges()[0].edge_label, 7);
  EXPECT_TRUE(IsMinimalDfsCode(code));
}

TEST(DfsCodeTest, SelfLoop) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(2);
  g.AddEdge(a, a, 9);
  const DfsCode code = MinimalDfsCode(g);
  ASSERT_EQ(code.size(), 1u);
  EXPECT_EQ(code.edges()[0].from, 0u);
  EXPECT_EQ(code.edges()[0].to, 0u);
  EXPECT_TRUE(iso::AreIsomorphic(code.ToGraph(), g));
}

TEST(DfsCodeTest, DirectionMatters) {
  LabeledGraph path;
  VertexId a = path.AddVertex(0);
  VertexId b = path.AddVertex(0);
  VertexId c = path.AddVertex(0);
  path.AddEdge(a, b, 1);
  path.AddEdge(b, c, 1);
  LabeledGraph fan;
  a = fan.AddVertex(0);
  b = fan.AddVertex(0);
  c = fan.AddVertex(0);
  fan.AddEdge(b, a, 1);
  fan.AddEdge(b, c, 1);
  EXPECT_NE(MinimalDfsCode(path), MinimalDfsCode(fan));
}

TEST(DfsCodeTest, ParallelEdges) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  g.AddEdge(a, b, 1);
  g.AddEdge(a, b, 1);
  const DfsCode code = MinimalDfsCode(g);
  EXPECT_EQ(code.size(), 2u);
  EXPECT_TRUE(iso::AreIsomorphic(code.ToGraph(), g));
}

TEST(DfsCodeTest, ToGraphRoundTripIsomorphic) {
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    const LabeledGraph g = RandomConnected(rng, 5, 3, 2, 2);
    const DfsCode code = MinimalDfsCode(g);
    EXPECT_EQ(code.size(), g.num_edges());
    EXPECT_TRUE(iso::AreIsomorphic(code.ToGraph(), g))
        << g.DebugString() << code.ToString();
  }
}

TEST(DfsCodeTest, NonMinimalCodeRejected) {
  // Build a path 0->1->2 and write a deliberately bad (but valid-shape)
  // code that starts from the middle: its reconstruction is isomorphic,
  // but the code differs from the minimum.
  LabeledGraph g;
  const VertexId a = g.AddVertex(1);
  const VertexId b = g.AddVertex(2);
  const VertexId c = g.AddVertex(3);
  g.AddEdge(a, b, 0);
  g.AddEdge(b, c, 0);
  const DfsCode minimal = MinimalDfsCode(g);
  // Alternative traversal starting at c.
  DfsCode other({DfsEdge{0, 1, 3, 0, false, 2},
                 DfsEdge{1, 2, 2, 0, false, 1}});
  ASSERT_TRUE(iso::AreIsomorphic(other.ToGraph(), g));
  EXPECT_NE(other, minimal);
  EXPECT_FALSE(IsMinimalDfsCode(other));
  EXPECT_TRUE(IsMinimalDfsCode(minimal));
}

// The headline property: minimal DFS codes and the library's canonical
// codes agree on isomorphism classification — two completely independent
// canonical forms cross-validate each other.
class DfsCodeCrossCheckTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DfsCodeCrossCheckTest, AgreesWithCanonicalCodes) {
  Rng rng(GetParam());
  std::vector<LabeledGraph> pool;
  for (int i = 0; i < 10; ++i) {
    pool.push_back(RandomConnected(rng, 4, 2, 2, 2));
  }
  // Add permuted copies so positives exist.
  const std::size_t originals = pool.size();
  for (std::size_t i = 0; i < originals; i += 3) {
    std::vector<VertexId> perm(pool[i].num_vertices());
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(perm);
    pool.push_back(Permute(pool[i], perm));
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      const bool dfs_equal =
          MinimalDfsCode(pool[i]) == MinimalDfsCode(pool[j]);
      const bool canonical_equal = iso::AreIsomorphic(pool[i], pool[j]);
      ASSERT_EQ(dfs_equal, canonical_equal)
          << pool[i].DebugString() << pool[j].DebugString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsCodeCrossCheckTest,
                         ::testing::Values(31, 32, 33, 34));

TEST(DfsCodeTest, MinimalIsInvariantUnderPermutation) {
  Rng rng(41);
  const LabeledGraph g = RandomConnected(rng, 6, 4, 2, 3);
  const DfsCode code = MinimalDfsCode(g);
  std::vector<VertexId> perm(g.num_vertices());
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 10; ++trial) {
    rng.Shuffle(perm);
    EXPECT_EQ(MinimalDfsCode(Permute(g, perm)), code);
  }
}

}  // namespace
}  // namespace tnmine::gspan
