#include "common/statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace tnmine {
namespace {

TEST(SummarizeTest, EmptyGivesZeros) {
  const SummaryStats s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  const SummaryStats s = Summarize({7.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 7.0);
  EXPECT_EQ(s.max, 7.0);
  EXPECT_EQ(s.mean, 7.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(SummarizeTest, KnownSample) {
  const SummaryStats s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.0, 1e-12);  // classic population-stddev example
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(RunningStatsTest, MatchesBatchOnRandomData) {
  Rng rng(3);
  std::vector<double> values;
  RunningStats acc;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.NextGaussian(10, 4);
    values.push_back(x);
    acc.Add(x);
  }
  const SummaryStats batch = Summarize(values);
  const SummaryStats streaming = acc.Finish();
  EXPECT_EQ(batch.count, streaming.count);
  EXPECT_NEAR(batch.mean, streaming.mean, 1e-9);
  EXPECT_NEAR(batch.stddev, streaming.stddev, 1e-9);
  EXPECT_EQ(batch.min, streaming.min);
  EXPECT_EQ(batch.max, streaming.max);
}

TEST(HistogramTest, CountsIntoBuckets) {
  const std::vector<double> values = {1, 5, 9, 10, 11, 99, 100, 150, 999};
  const std::vector<double> edges = {1, 10, 100, 1000};
  const auto buckets = Histogram(values, edges);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].count, 3u);   // 1, 5, 9
  EXPECT_EQ(buckets[1].count, 3u);   // 10, 11, 99
  EXPECT_EQ(buckets[2].count, 3u);   // 100, 150, 999
}

TEST(HistogramTest, IgnoresOutOfRange) {
  // 10.0 == edges.back() is IN range (final bucket is closed); only the
  // values strictly outside [1, 10] are dropped.
  const auto buckets = Histogram({-5.0, 0.5, 10.0, 20.0}, {1.0, 10.0});
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].count, 1u);
}

TEST(HistogramTest, FinalBucketIsClosed) {
  // Regression: values exactly equal to edges.back() used to be silently
  // dropped. The final bucket is [lo, hi] (Weka convention).
  const std::vector<double> values = {1.0, 5.0, 10.0, 10.0};
  const auto buckets = Histogram(values, {1.0, 5.0, 10.0});
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].count, 1u);  // [1, 5): 1.0
  EXPECT_EQ(buckets[1].count, 3u);  // [5, 10]: 5.0 and both 10.0s
}

TEST(HistogramTest, AccountsForEveryInRangeValue) {
  const std::vector<double> edges = {0.0, 2.5, 5.0, 7.5, 10.0};
  std::vector<double> values;
  for (int i = 0; i <= 100; ++i) values.push_back(i * 0.1);  // [0, 10]
  const auto buckets = Histogram(values, edges);
  std::size_t total = 0;
  for (const auto& b : buckets) total += b.count;
  EXPECT_EQ(total, values.size());  // nothing dropped, nothing doubled
  const SummaryStats stats = Summarize(values);
  EXPECT_EQ(stats.count, values.size());
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg;
  for (double v : y) neg.push_back(-v);
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, IndependentNearZero) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.NextDouble());
    y.push_back(rng.NextDouble());
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.03);
}

TEST(PearsonTest, DegenerateIsZero) {
  EXPECT_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
}

}  // namespace
}  // namespace tnmine
