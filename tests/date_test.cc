#include "common/date.h"

#include <gtest/gtest.h>

namespace tnmine {
namespace {

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(DayNumberFromCivil({1970, 1, 1}), 0);
  const CivilDate c = CivilFromDayNumber(0);
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DayNumberFromCivil({1970, 1, 2}), 1);
  EXPECT_EQ(DayNumberFromCivil({1969, 12, 31}), -1);
  EXPECT_EQ(DayNumberFromCivil({2000, 3, 1}), 11017);
  // The paper's data era: mid-2004.
  EXPECT_EQ(FormatDayNumber(DayNumberFromCivil({2004, 7, 1})), "2004-07-01");
}

TEST(DateTest, RoundTripAcrossDecades) {
  for (std::int64_t dn = -40000; dn <= 40000; dn += 17) {
    const CivilDate c = CivilFromDayNumber(dn);
    EXPECT_EQ(DayNumberFromCivil(c), dn);
  }
}

TEST(DateTest, LeapYearHandling) {
  const std::int64_t feb28 = DayNumberFromCivil({2004, 2, 28});
  const CivilDate next = CivilFromDayNumber(feb28 + 1);
  EXPECT_EQ(next.month, 2);
  EXPECT_EQ(next.day, 29);  // 2004 is a leap year
  const std::int64_t feb28_2005 = DayNumberFromCivil({2005, 2, 28});
  const CivilDate next2005 = CivilFromDayNumber(feb28_2005 + 1);
  EXPECT_EQ(next2005.month, 3);
  EXPECT_EQ(next2005.day, 1);
}

TEST(DateTest, ParseValid) {
  std::int64_t dn = -1;
  ASSERT_TRUE(ParseDayNumber("2004-02-29", &dn));
  EXPECT_EQ(FormatDayNumber(dn), "2004-02-29");
}

TEST(DateTest, ParseRejectsGarbage) {
  std::int64_t dn = 0;
  EXPECT_FALSE(ParseDayNumber("not-a-date", &dn));
  EXPECT_FALSE(ParseDayNumber("2004-13-01", &dn));
  EXPECT_FALSE(ParseDayNumber("2004-00-10", &dn));
  EXPECT_FALSE(ParseDayNumber("2005-02-29", &dn));  // not a leap year
  EXPECT_FALSE(ParseDayNumber("2004-04-31", &dn));  // April has 30 days
}

TEST(DateTest, ParseAcceptRejectTable) {
  // Regression: the old sscanf-based parser accepted trailing garbage and
  // leading whitespace. The strict parser requires full consumption.
  struct Case {
    const char* text;
    bool accept;
  };
  const Case cases[] = {
      {"2005-01-02", true},
      {"2005-1-2", true},       // unpadded fields are fine
      {"0001-01-01", true},
      {"1969-12-31", true},
      {"2005-01-02xyz", false},  // trailing garbage
      {"2005-01-0", false},      // day 0
      {" 2005-01-02", false},    // leading whitespace
      {"2005-01-02 ", false},    // trailing whitespace
      {"2005-01-02\n", false},   // trailing newline
      {"2005 -01-02", false},    // internal whitespace
      {"2005-01- 2", false},
      {"+2005-01-02", false},    // explicit '+' sign
      {"2005-+1-02", false},
      {"20050102", false},       // missing separators
      {"2005-01", false},        // missing day
      {"2005-01-02-03", false},  // extra field
      {"", false},
      {"--", false},
      {"99999999999-01-02", false},  // year overflows int32
      {"2005-01-99999999999", false},
  };
  for (const Case& c : cases) {
    std::int64_t dn = 0;
    EXPECT_EQ(ParseDayNumber(c.text, &dn), c.accept)
        << "input: '" << c.text << "'";
  }
}

TEST(DateTest, FormatParseRoundTrip) {
  for (std::int64_t dn = -100000; dn <= 100000; dn += 997) {
    std::int64_t back = 0;
    const std::string text = FormatDayNumber(dn);
    ASSERT_TRUE(ParseDayNumber(text, &back)) << text;
    EXPECT_EQ(back, dn) << text;
  }
}

TEST(DateTest, DayOfWeek) {
  EXPECT_EQ(DayOfWeek(DayNumberFromCivil({1970, 1, 1})), 3);   // Thursday
  EXPECT_EQ(DayOfWeek(DayNumberFromCivil({2004, 7, 5})), 0);   // Monday
  EXPECT_EQ(DayOfWeek(DayNumberFromCivil({2004, 7, 11})), 6);  // Sunday
  EXPECT_EQ(DayOfWeek(DayNumberFromCivil({1969, 12, 31})), 2); // Wednesday
}

}  // namespace
}  // namespace tnmine
