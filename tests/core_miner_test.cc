#include "core/miner.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "synth/planted.h"

namespace tnmine::core {
namespace {

TEST(StructuralMiningTest, FindsPlantedPatternsWithDecentRecall) {
  // The footnote-2 experiment in miniature: plant patterns in a single
  // graph, partition + mine, expect >= 50 % recall.
  synth::PlantedOptions planted;
  planted.num_patterns = 5;
  planted.pattern_edges = 3;
  planted.instances_per_pattern = 40;
  planted.noise_vertices = 60;
  planted.noise_edges = 120;
  planted.num_edge_labels = 5;
  planted.seed = 11;
  const synth::PlantedResult data = synth::GeneratePlantedGraph(planted);

  for (auto strategy : {partition::SplitStrategy::kBreadthFirst,
                        partition::SplitStrategy::kDepthFirst}) {
    StructuralMiningOptions options;
    options.strategy = strategy;
    options.num_partitions = 40;
    options.repetitions = 3;
    options.min_support = 15;
    options.max_pattern_edges = 3;
    options.seed = 21;
    const StructuralMiningResult result =
        MineStructuralPatterns(data.graph, options);
    EXPECT_EQ(result.partitions_per_repetition.size(), 3u);
    EXPECT_FALSE(result.registry.empty());
    const double recall =
        synth::PatternRecall(data.patterns, result.registry);
    EXPECT_GE(recall, 0.5) << "strategy "
                           << static_cast<int>(strategy);
  }
}

TEST(StructuralMiningTest, RepetitionsOnlyAddPatterns) {
  synth::PlantedOptions planted;
  planted.seed = 13;
  const synth::PlantedResult data = synth::GeneratePlantedGraph(planted);
  StructuralMiningOptions one;
  one.num_partitions = 30;
  one.min_support = 10;
  one.max_pattern_edges = 2;
  one.repetitions = 1;
  StructuralMiningOptions three = one;
  three.repetitions = 3;
  const auto r1 = MineStructuralPatterns(data.graph, one);
  const auto r3 = MineStructuralPatterns(data.graph, three);
  EXPECT_GE(r3.registry.size(), r1.registry.size());
}

TEST(StructuralMiningTest, GspanBackendAgreesOnRegistryContents) {
  synth::PlantedOptions planted;
  planted.num_patterns = 3;
  planted.instances_per_pattern = 25;
  planted.seed = 17;
  const synth::PlantedResult data = synth::GeneratePlantedGraph(planted);
  StructuralMiningOptions options;
  options.num_partitions = 25;
  options.min_support = 8;
  options.max_pattern_edges = 3;
  options.repetitions = 1;
  options.miner = MinerKind::kFsg;
  const auto fsg_result = MineStructuralPatterns(data.graph, options);
  options.miner = MinerKind::kGspan;
  const auto gspan_result = MineStructuralPatterns(data.graph, options);
  // Same seed => same partitions => identical pattern sets.
  EXPECT_EQ(fsg_result.registry.size(), gspan_result.registry.size());
  for (const auto* p : fsg_result.registry.SortedBySupport()) {
    const auto* q = gspan_result.registry.Find(p->code);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(p->support, q->support);
  }
}

TEST(TemporalMiningTest, MinesRepeatedRoutesFromSyntheticData) {
  const auto ds =
      data::GenerateTransportData(data::GeneratorConfig::SmallScale());
  TemporalMiningOptions options;
  options.min_support_fraction = 0.05;
  options.max_pattern_edges = 3;
  const TemporalMiningResult result = MineTemporalPatterns(ds, options);
  EXPECT_GT(result.partition.transactions.size(), 0u);
  EXPECT_GE(result.absolute_min_support, 1u);
  EXPECT_FALSE(result.registry.empty());
  // Patterns carry tid lists that respect the support.
  for (const auto* p : result.registry.SortedBySupport()) {
    EXPECT_GE(p->support, result.absolute_min_support);
    EXPECT_EQ(p->support, p->tids.Cardinality());
  }
  // With location-unique vertex labels, patterns have distinct vertex
  // labels.
  const auto* top = result.registry.SortedBySupport().front();
  EXPECT_EQ(top->graph.CountDistinctVertexLabels(),
            top->graph.num_vertices());
}

TEST(TemporalMiningTest, EmptyDataset) {
  const TemporalMiningResult result =
      MineTemporalPatterns(data::TransactionDataset{}, {});
  EXPECT_TRUE(result.registry.empty());
  EXPECT_EQ(result.partition.transactions.size(), 0u);
}

}  // namespace
}  // namespace tnmine::core
