#include "partition/temporal.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/date.h"
#include "data/generator.h"
#include "graph/algorithms.h"

namespace tnmine::partition {
namespace {

using data::Transaction;
using data::TransactionDataset;

Transaction MakeTxn(std::int64_t pickup, std::int64_t delivery, double olat,
                    double olon, double dlat, double dlon, double weight) {
  Transaction t;
  t.req_pickup_day = pickup;
  t.req_delivery_day = delivery;
  t.origin_latitude = olat;
  t.origin_longitude = olon;
  t.dest_latitude = dlat;
  t.dest_longitude = dlon;
  t.gross_weight = weight;
  t.total_distance = 100;
  t.transit_hours = 10;
  t.mode = data::TransMode::kTruckload;
  return t;
}

TEST(TemporalPartitionTest, EmptyDataset) {
  const TemporalPartition p =
      PartitionByActiveDay(TransactionDataset{}, TemporalOptions{});
  EXPECT_TRUE(p.transactions.empty());
}

TEST(TemporalPartitionTest, ActiveWindowSpansDays) {
  TransactionDataset ds;
  // One transaction active days 10..12; another active only day 11.
  // Two more on day 11 so the day-11 component has >1 edge.
  ds.Add(MakeTxn(10, 12, 40.0, -90.0, 41.0, -91.0, 100));
  ds.Add(MakeTxn(11, 11, 41.0, -91.0, 42.0, -92.0, 200));
  ds.Add(MakeTxn(10, 12, 41.0, -91.0, 43.0, -93.0, 300));
  TemporalOptions options;
  options.remove_single_edge_transactions = false;
  options.split_components = false;
  const TemporalPartition p = PartitionByActiveDay(ds, options);
  // Days 10, 11, 12 all have graphs.
  ASSERT_EQ(p.transactions.size(), 3u);
  EXPECT_EQ(p.transaction_day[0], 10);
  EXPECT_EQ(p.transaction_day[1], 11);
  EXPECT_EQ(p.transaction_day[2], 12);
  EXPECT_EQ(p.transactions[0].num_edges(), 2u);  // txns 0 and 2
  EXPECT_EQ(p.transactions[1].num_edges(), 3u);  // all three
  EXPECT_EQ(p.transactions[2].num_edges(), 2u);
}

TEST(TemporalPartitionTest, VertexLabelsStableAcrossDays) {
  TransactionDataset ds;
  ds.Add(MakeTxn(1, 1, 40.0, -90.0, 41.0, -91.0, 100));
  ds.Add(MakeTxn(1, 1, 41.0, -91.0, 42.0, -92.0, 100));
  ds.Add(MakeTxn(5, 5, 40.0, -90.0, 41.0, -91.0, 100));
  ds.Add(MakeTxn(5, 5, 41.0, -91.0, 42.0, -92.0, 100));
  TemporalOptions options;
  options.split_components = false;
  const TemporalPartition p = PartitionByActiveDay(ds, options);
  ASSERT_EQ(p.transactions.size(), 2u);
  // The same locations appear on both days; their vertex labels (by
  // location) must match so the route supports one pattern.
  std::unordered_set<graph::Label> day1_labels, day5_labels;
  for (graph::VertexId v = 0; v < p.transactions[0].num_vertices(); ++v) {
    day1_labels.insert(p.transactions[0].vertex_label(v));
  }
  for (graph::VertexId v = 0; v < p.transactions[1].num_vertices(); ++v) {
    day5_labels.insert(p.transactions[1].vertex_label(v));
  }
  EXPECT_EQ(day1_labels, day5_labels);
}

TEST(TemporalPartitionTest, DeduplicatesEdges) {
  TransactionDataset ds;
  // Two identical shipments on the same day + one other edge.
  ds.Add(MakeTxn(3, 3, 40.0, -90.0, 41.0, -91.0, 100));
  ds.Add(MakeTxn(3, 3, 40.0, -90.0, 41.0, -91.0, 101));  // same weight bin
  ds.Add(MakeTxn(3, 3, 41.0, -91.0, 42.0, -92.0, 30000));
  TemporalOptions options;
  options.split_components = false;
  options.num_bins = 2;
  const TemporalPartition p = PartitionByActiveDay(ds, options);
  ASSERT_EQ(p.transactions.size(), 1u);
  EXPECT_EQ(p.transactions[0].num_edges(), 2u);  // duplicate removed
}

TEST(TemporalPartitionTest, SplitsComponentsAndDropsSingles) {
  TransactionDataset ds;
  // Day 1: two disconnected 2-edge chains and one isolated single edge.
  ds.Add(MakeTxn(1, 1, 40.0, -90.0, 41.0, -91.0, 100));
  ds.Add(MakeTxn(1, 1, 41.0, -91.0, 42.0, -92.0, 30000));
  ds.Add(MakeTxn(1, 1, 30.0, -80.0, 31.0, -81.0, 100));
  ds.Add(MakeTxn(1, 1, 31.0, -81.0, 32.0, -82.0, 30000));
  ds.Add(MakeTxn(1, 1, 25.0, -70.0, 26.0, -71.0, 100));
  TemporalOptions options;
  const TemporalPartition p = PartitionByActiveDay(ds, options);
  ASSERT_EQ(p.transactions.size(), 2u);  // single-edge component dropped
  for (const auto& g : p.transactions) {
    EXPECT_EQ(g.num_edges(), 2u);
    EXPECT_TRUE(graph::IsWeaklyConnected(g));
  }
}

TEST(TemporalPartitionTest, VertexLabelFilterDropsBusyDays) {
  TransactionDataset ds;
  // Day 1: 2 edges over 3 locations. Day 2: 6 edges over 12 locations.
  ds.Add(MakeTxn(1, 1, 40.0, -90.0, 41.0, -91.0, 100));
  ds.Add(MakeTxn(1, 1, 41.0, -91.0, 42.0, -92.0, 100));
  for (int i = 0; i < 6; ++i) {
    ds.Add(MakeTxn(2, 2, 30.0 + i, -80.0, 30.0 + i, -81.0, 100));
  }
  TemporalOptions options;
  options.split_components = false;
  options.max_distinct_vertex_labels = 10;
  const TemporalPartition p = PartitionByActiveDay(ds, options);
  ASSERT_EQ(p.transactions.size(), 1u);
  EXPECT_EQ(p.transaction_day[0], 1);
  EXPECT_EQ(p.days_filtered_out, 1u);
}

TEST(TemporalPartitionTest, StatsMatchHandComputation) {
  std::vector<graph::LabeledGraph> txns;
  graph::LabeledGraph a;
  const auto v0 = a.AddVertex(10);
  const auto v1 = a.AddVertex(11);
  a.AddEdge(v0, v1, 1);
  a.AddEdge(v1, v0, 2);
  graph::LabeledGraph b;
  const auto w0 = b.AddVertex(10);
  const auto w1 = b.AddVertex(12);
  const auto w2 = b.AddVertex(13);
  b.AddEdge(w0, w1, 1);
  b.AddEdge(w1, w2, 1);
  for (int i = 0; i < 10; ++i) b.AddEdge(w0, w2, 3);
  txns.push_back(a);
  txns.push_back(b);
  const TemporalStats stats = ComputeTemporalStats(txns);
  EXPECT_EQ(stats.num_transactions, 2u);
  EXPECT_EQ(stats.distinct_edge_labels, 3u);
  EXPECT_EQ(stats.distinct_vertex_labels, 4u);
  EXPECT_EQ(stats.max_edges, 12u);
  EXPECT_EQ(stats.max_vertices, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_edges, 7.0);
  EXPECT_DOUBLE_EQ(stats.avg_vertices, 2.5);
  EXPECT_EQ(stats.size_buckets[0], 1u);   // 2 edges
  EXPECT_EQ(stats.size_buckets[1], 1u);   // 12 edges
}

TEST(TemporalPartitionTest, SyntheticDataProducesTableTwoShape) {
  const TransactionDataset ds =
      data::GenerateTransportData(data::GeneratorConfig::SmallScale());
  TemporalOptions options;
  options.split_components = false;
  const TemporalPartition p = PartitionByActiveDay(ds, options);
  const TemporalStats stats = ComputeTemporalStats(p.transactions);
  // Roughly one transaction per active day over the 60-day window (plus
  // delivery spill-over).
  EXPECT_GT(stats.num_transactions, 30u);
  EXPECT_LT(stats.num_transactions, 100u);
  EXPECT_LE(stats.distinct_edge_labels, 7u);
  EXPECT_GT(stats.avg_edges, 5.0);
}

}  // namespace
}  // namespace tnmine::partition
