#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace tnmine {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 - 600);
    EXPECT_LT(c, kDraws / 10 + 600);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ZipfRankZeroMostPopular) {
  Rng rng(23);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextZipf(50, 1.1)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[0], counts[49] * 10);
}

TEST(RngTest, ZipfRespectsBound) {
  Rng rng(29);
  for (double s : {0.5, 1.0, 1.5, 2.5}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.NextZipf(17, s), 17u);
    }
  }
  EXPECT_EQ(rng.NextZipf(1, 1.0), 0u);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 2, 3, 4, 5, 5, 5};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(orig.begin(), orig.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(101);
  Rng fork1 = a.Fork();
  Rng b(101);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fork1.Next(), fork2.Next());
}

TEST(RngTest, LogNormalPositive) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.NextLogNormal(3.0, 1.5), 0.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

}  // namespace
}  // namespace tnmine
