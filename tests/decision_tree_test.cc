#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generator.h"

namespace tnmine::ml {
namespace {

/// Class = (x > 10), with optional label noise.
AttributeTable ThresholdTable(std::size_t n, double noise,
                              std::uint64_t seed) {
  AttributeTable t;
  t.AddNumericAttribute("x");
  t.AddNumericAttribute("junk");
  t.AddNominalAttribute("class", {"lo", "hi"});
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.NextDouble(0, 20);
    int cls = x > 10 ? 1 : 0;
    if (rng.NextBool(noise)) cls = 1 - cls;
    t.AddRow({x, rng.NextDouble(), static_cast<double>(cls)});
  }
  return t;
}

TEST(DecisionTreeTest, LearnsNumericThreshold) {
  const AttributeTable t = ThresholdTable(400, 0.0, 1);
  const DecisionTree tree =
      DecisionTree::Train(t, t.AttributeIndex("class"), {});
  EXPECT_EQ(tree.root_attribute(), t.AttributeIndex("x"));
  EXPECT_DOUBLE_EQ(tree.Accuracy(t), 1.0);
  EXPECT_EQ(tree.Predict({3.0, 0.5, 0}), 0);
  EXPECT_EQ(tree.Predict({17.0, 0.5, 0}), 1);
}

TEST(DecisionTreeTest, GeneralizesUnderNoise) {
  const AttributeTable train = ThresholdTable(600, 0.05, 2);
  const AttributeTable test = ThresholdTable(300, 0.0, 3);
  const DecisionTree tree =
      DecisionTree::Train(train, train.AttributeIndex("class"), {});
  EXPECT_GT(tree.Accuracy(test), 0.93);
}

TEST(DecisionTreeTest, NominalMultiwaySplit) {
  AttributeTable t;
  t.AddNominalAttribute("region", {"east", "west", "gulf"});
  t.AddNominalAttribute("class", {"a", "b", "c"});
  Rng rng(5);
  for (int i = 0; i < 150; ++i) {
    const int region = static_cast<int>(rng.NextBounded(3));
    t.AddRow({static_cast<double>(region), static_cast<double>(region)});
  }
  const DecisionTree tree = DecisionTree::Train(t, 1, {});
  EXPECT_EQ(tree.root_attribute(), 0);
  EXPECT_DOUBLE_EQ(tree.Accuracy(t), 1.0);
  EXPECT_EQ(tree.Predict({2.0, 0.0}), 2);
}

TEST(DecisionTreeTest, PruningShrinksTree) {
  const AttributeTable train = ThresholdTable(500, 0.15, 7);
  DecisionTreeOptions no_prune;
  no_prune.prune = false;
  const DecisionTree big =
      DecisionTree::Train(train, train.AttributeIndex("class"), no_prune);
  DecisionTreeOptions prune;
  prune.prune = true;
  prune.pruning_confidence = 0.25;
  const DecisionTree small =
      DecisionTree::Train(train, train.AttributeIndex("class"), prune);
  EXPECT_LE(small.depth(), big.depth());
  // Pruned tree generalizes at least as well on clean data.
  const AttributeTable test = ThresholdTable(300, 0.0, 8);
  EXPECT_GE(small.Accuracy(test) + 0.02, big.Accuracy(test));
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  const AttributeTable t = ThresholdTable(400, 0.2, 9);
  DecisionTreeOptions options;
  options.max_depth = 2;
  options.prune = false;
  const DecisionTree tree =
      DecisionTree::Train(t, t.AttributeIndex("class"), options);
  EXPECT_LE(tree.depth(), 3u);  // depth counts nodes; 2 splits max
}

TEST(DecisionTreeTest, PureNodeIsLeaf) {
  AttributeTable t;
  t.AddNumericAttribute("x");
  t.AddNominalAttribute("class", {"only"});
  for (int i = 0; i < 10; ++i) t.AddRow({static_cast<double>(i), 0});
  const DecisionTree tree = DecisionTree::Train(t, 1, {});
  EXPECT_EQ(tree.root_attribute(), -1);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.Accuracy(t), 1.0);
}

TEST(DecisionTreeTest, PessimisticErrorsMonotone) {
  // More observed errors -> more estimated extra errors; smaller samples
  // -> proportionally more pessimism.
  EXPECT_GT(PessimisticExtraErrors(100, 10, 0.25),
            PessimisticExtraErrors(100, 5, 0.25) - 1e-12);
  EXPECT_GT(PessimisticExtraErrors(10, 0, 0.25) / 10.0,
            PessimisticExtraErrors(1000, 0, 0.25) / 1000.0);
  // Hand-checked Wilson-bound value: addErrs(100, 10, 0.25) = 2.7496...
  EXPECT_NEAR(PessimisticExtraErrors(100, 10, 0.25), 2.75, 0.01);
}

TEST(DecisionTreeTest, ToStringMentionsSplitAttribute) {
  const AttributeTable t = ThresholdTable(200, 0.0, 11);
  const DecisionTree tree =
      DecisionTree::Train(t, t.AttributeIndex("class"), {});
  const std::string text = tree.ToString(t);
  EXPECT_NE(text.find("x <="), std::string::npos);
  EXPECT_NE(text.find("-> "), std::string::npos);
}

// The paper's classifier scenario on synthetic data: TRANS_MODE is ~96 %
// predictable and the tree splits on GROSS_WEIGHT first.
TEST(DecisionTreeTest, TransModeScenario) {
  const auto ds =
      data::GenerateTransportData(data::GeneratorConfig::SmallScale());
  const AttributeTable table = AttributeTable::FromTransactions(ds);
  const AttributeTable disc = table.Discretized(10, true);
  const int cls = disc.AttributeIndex("TRANS_MODE");
  const DecisionTree tree = DecisionTree::Train(disc, cls, {});
  EXPECT_EQ(tree.root_attribute(), disc.AttributeIndex("GROSS_WEIGHT"));
  const double acc = tree.Accuracy(disc);
  EXPECT_GT(acc, 0.90);
  EXPECT_LT(acc, 1.0);  // the 4 % mode noise keeps it from being perfect
}

}  // namespace
}  // namespace tnmine::ml
