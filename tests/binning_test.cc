#include "common/binning.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace tnmine {
namespace {

TEST(DiscretizerTest, FromCutPointsBasic) {
  const Discretizer d = Discretizer::FromCutPoints({10.0, 20.0, 30.0});
  EXPECT_EQ(d.num_bins(), 4);
  EXPECT_EQ(d.Bin(-100.0), 0);
  EXPECT_EQ(d.Bin(10.0), 0);   // closed on the right
  EXPECT_EQ(d.Bin(10.0001), 1);
  EXPECT_EQ(d.Bin(20.0), 1);
  EXPECT_EQ(d.Bin(25.0), 2);
  EXPECT_EQ(d.Bin(30.0), 2);
  EXPECT_EQ(d.Bin(31.0), 3);
  EXPECT_EQ(d.Bin(1e12), 3);
}

TEST(DiscretizerTest, EmptyCutsSingleBin) {
  const Discretizer d = Discretizer::FromCutPoints({});
  EXPECT_EQ(d.num_bins(), 1);
  EXPECT_EQ(d.Bin(-1.0), 0);
  EXPECT_EQ(d.Bin(42.0), 0);
}

TEST(DiscretizerTest, EqualWidthCoversRange) {
  const std::vector<double> values = {0.0, 10.0, 20.0, 30.0, 40.0};
  const Discretizer d = Discretizer::EqualWidth(values, 4);
  EXPECT_EQ(d.num_bins(), 4);
  EXPECT_EQ(d.Bin(0.0), 0);
  EXPECT_EQ(d.Bin(10.0), 0);  // boundary closed right
  EXPECT_EQ(d.Bin(15.0), 1);
  EXPECT_EQ(d.Bin(35.0), 3);
  EXPECT_EQ(d.Bin(40.0), 3);
}

TEST(DiscretizerTest, EqualWidthDegenerateAllEqual) {
  const std::vector<double> values(7, 3.5);
  const Discretizer d = Discretizer::EqualWidth(values, 5);
  EXPECT_EQ(d.num_bins(), 1);
  EXPECT_EQ(d.Bin(3.5), 0);
}

TEST(DiscretizerTest, EqualFrequencyBalances) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(static_cast<double>(i));
  const Discretizer d = Discretizer::EqualFrequency(values, 10);
  EXPECT_EQ(d.num_bins(), 10);
  std::vector<int> counts(10, 0);
  for (double v : values) ++counts[d.Bin(v)];
  for (int c : counts) {
    EXPECT_GE(c, 80);
    EXPECT_LE(c, 120);
  }
}

TEST(DiscretizerTest, EqualFrequencyHeavyDuplicatesCollapses) {
  // 90% of the mass at one value: duplicate quantile cuts must collapse.
  std::vector<double> values(900, 5.0);
  for (int i = 0; i < 100; ++i) values.push_back(100.0 + i);
  const Discretizer d = Discretizer::EqualFrequency(values, 10);
  EXPECT_LT(d.num_bins(), 10);
  EXPECT_GE(d.num_bins(), 2);
  EXPECT_EQ(d.Bin(5.0), 0);
  EXPECT_GT(d.Bin(150.0), 0);
}

TEST(DiscretizerTest, IntervalLabelsAreInformative) {
  const Discretizer d = Discretizer::FromCutPoints({6500.0, 13000.0});
  EXPECT_EQ(d.IntervalLabel(0), "(-inf, 6500]");
  EXPECT_EQ(d.IntervalLabel(1), "(6500, 13000]");
  EXPECT_EQ(d.IntervalLabel(2), "(13000, +inf)");
}

// Paper Section 3: with binning, two weights of 49 and 52 tons (98,000 and
// 104,000 lb) within a ~500-ton range must land in the same bin when seven
// bins cover the range.
TEST(DiscretizerTest, PaperWeightBinningScenario) {
  std::vector<double> weights;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) weights.push_back(rng.NextDouble(0, 1.0e6));
  const Discretizer d = Discretizer::EqualWidth(weights, 7);
  EXPECT_EQ(d.num_bins(), 7);
  EXPECT_EQ(d.Bin(98000.0), d.Bin(104000.0));
}

class BinningPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BinningPropertyTest, EveryValueMapsIntoValidBinAndMonotone) {
  const int bins = GetParam();
  Rng rng(99 + static_cast<std::uint64_t>(bins));
  std::vector<double> values;
  for (int i = 0; i < 777; ++i) values.push_back(rng.NextGaussian(0, 100));
  for (const Discretizer& d : {Discretizer::EqualWidth(values, bins),
                               Discretizer::EqualFrequency(values, bins)}) {
    int prev = -1;
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (double v : sorted) {
      const int b = d.Bin(v);
      ASSERT_GE(b, 0);
      ASSERT_LT(b, d.num_bins());
      ASSERT_GE(b, prev);  // monotone in the value
      prev = b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BinCounts, BinningPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 7, 10, 16));

}  // namespace
}  // namespace tnmine
