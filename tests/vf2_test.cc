#include "iso/vf2.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include "common/random.h"

namespace tnmine::iso {
namespace {

using graph::EdgeId;
using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

LabeledGraph Path3(Label v, Label e) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(v);
  const VertexId b = g.AddVertex(v);
  const VertexId c = g.AddVertex(v);
  g.AddEdge(a, b, e);
  g.AddEdge(b, c, e);
  return g;
}

/// Brute-force reference: tries every injective vertex assignment and
/// counts assignments where every pattern edge has enough matching target
/// edges (multigraph-aware).
std::uint64_t BruteForceCount(const LabeledGraph& pattern,
                              const LabeledGraph& target) {
  const std::size_t np = pattern.num_vertices();
  const std::size_t nt = target.num_vertices();
  if (np > nt) return 0;
  std::vector<VertexId> targets(nt);
  std::iota(targets.begin(), targets.end(), 0);
  std::vector<VertexId> assignment(np);
  std::vector<char> used(nt, 0);
  std::uint64_t count = 0;
  // Recursive lambda over pattern vertices in id order.
  auto feasible_complete = [&]() {
    // Count pattern-edge multiplicities per (mapped src, mapped dst, label)
    // and compare with target multiplicities.
    std::map<std::tuple<VertexId, VertexId, Label>, int> need, have;
    bool ok = true;
    pattern.ForEachEdge([&](EdgeId e) {
      const auto& edge = pattern.edge(e);
      ++need[{assignment[edge.src], assignment[edge.dst], edge.label}];
    });
    target.ForEachEdge([&](EdgeId e) {
      const auto& edge = target.edge(e);
      ++have[{edge.src, edge.dst, edge.label}];
    });
    for (const auto& [key, n] : need) {
      const auto it = have.find(key);
      if (it == have.end() || it->second < n) {
        ok = false;
        break;
      }
    }
    return ok;
  };
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == np) {
      if (feasible_complete()) ++count;
      return;
    }
    for (VertexId t = 0; t < nt; ++t) {
      if (used[t] || target.vertex_label(t) != pattern.vertex_label(i)) {
        continue;
      }
      used[t] = 1;
      assignment[i] = t;
      rec(i + 1);
      used[t] = 0;
    }
  };
  rec(0);
  return count;
}

TEST(Vf2Test, FindsExactCopy) {
  const LabeledGraph g = Path3(1, 2);
  EXPECT_TRUE(ContainsSubgraph(g, g));
  EXPECT_EQ(CountEmbeddings(g, g), 1u);
}

TEST(Vf2Test, LabelsMustMatch) {
  EXPECT_FALSE(ContainsSubgraph(Path3(1, 2), Path3(1, 3)));
  EXPECT_FALSE(ContainsSubgraph(Path3(1, 2), Path3(2, 2)));
}

TEST(Vf2Test, DirectionMatters) {
  LabeledGraph fwd;
  VertexId a = fwd.AddVertex(0);
  VertexId b = fwd.AddVertex(0);
  fwd.AddEdge(a, b, 1);
  LabeledGraph bwd;
  a = bwd.AddVertex(0);
  b = bwd.AddVertex(0);
  bwd.AddEdge(b, a, 1);
  // Both single-edge graphs are isomorphic as graphs, so both match each
  // other (the edge just maps the other way).
  EXPECT_TRUE(ContainsSubgraph(fwd, bwd));
  // But a directed 2-cycle does not embed in a path.
  LabeledGraph cycle;
  a = cycle.AddVertex(0);
  b = cycle.AddVertex(0);
  cycle.AddEdge(a, b, 1);
  cycle.AddEdge(b, a, 1);
  EXPECT_FALSE(ContainsSubgraph(cycle, fwd));
}

TEST(Vf2Test, NonInducedSemantics) {
  // Pattern: a -> b. Target: triangle with extra edges. The extra target
  // edges must not block the match.
  LabeledGraph pattern;
  VertexId a = pattern.AddVertex(0);
  VertexId b = pattern.AddVertex(0);
  pattern.AddEdge(a, b, 1);
  LabeledGraph target;
  const VertexId x = target.AddVertex(0);
  const VertexId y = target.AddVertex(0);
  target.AddEdge(x, y, 1);
  target.AddEdge(y, x, 1);
  target.AddEdge(x, y, 2);
  EXPECT_TRUE(ContainsSubgraph(pattern, target));
  EXPECT_EQ(CountEmbeddings(pattern, target), 2u);  // x->y and y->x
}

TEST(Vf2Test, MultigraphMultiplicityRespected) {
  // Pattern needs two parallel a->b edges with label 1.
  LabeledGraph pattern;
  VertexId a = pattern.AddVertex(0);
  VertexId b = pattern.AddVertex(0);
  pattern.AddEdge(a, b, 1);
  pattern.AddEdge(a, b, 1);
  LabeledGraph single;
  a = single.AddVertex(0);
  b = single.AddVertex(0);
  single.AddEdge(a, b, 1);
  EXPECT_FALSE(ContainsSubgraph(pattern, single));
  single.AddEdge(a, b, 1);
  EXPECT_TRUE(ContainsSubgraph(pattern, single));
}

TEST(Vf2Test, SelfLoopHandling) {
  LabeledGraph pattern;
  const VertexId a = pattern.AddVertex(0);
  pattern.AddEdge(a, a, 7);
  LabeledGraph target;
  const VertexId x = target.AddVertex(0);
  const VertexId y = target.AddVertex(0);
  target.AddEdge(x, y, 7);
  EXPECT_FALSE(ContainsSubgraph(pattern, target));
  target.AddEdge(y, y, 7);
  EXPECT_TRUE(ContainsSubgraph(pattern, target));
}

TEST(Vf2Test, SingleVertexPattern) {
  LabeledGraph pattern;
  pattern.AddVertex(3);
  LabeledGraph target;
  target.AddVertex(3);
  target.AddVertex(4);
  target.AddVertex(3);
  EXPECT_EQ(CountEmbeddings(pattern, target), 2u);
}

TEST(Vf2Test, DisconnectedPattern) {
  // Pattern: two isolated labeled vertices; target has them in separate
  // components.
  LabeledGraph pattern;
  pattern.AddVertex(1);
  pattern.AddVertex(2);
  LabeledGraph target;
  target.AddVertex(1);
  target.AddVertex(2);
  target.AddVertex(2);
  EXPECT_EQ(CountEmbeddings(pattern, target), 2u);
}

TEST(Vf2Test, HubAndSpokeEmbeddingCount) {
  // Pattern: hub with 2 out-spokes (same labels). Target: hub with 4
  // out-spokes. Count = P(4,2) = 12 vertex maps.
  LabeledGraph pattern;
  const VertexId hub = pattern.AddVertex(0);
  for (int i = 0; i < 2; ++i) pattern.AddEdge(hub, pattern.AddVertex(0), 1);
  LabeledGraph target;
  const VertexId thub = target.AddVertex(0);
  for (int i = 0; i < 4; ++i) target.AddEdge(thub, target.AddVertex(0), 1);
  EXPECT_EQ(CountEmbeddings(pattern, target), 12u);
}

TEST(Vf2Test, ForbiddenVerticesBlockEmbeddings) {
  LabeledGraph pattern;
  VertexId a = pattern.AddVertex(0);
  VertexId b = pattern.AddVertex(0);
  pattern.AddEdge(a, b, 1);
  LabeledGraph target;
  const VertexId x = target.AddVertex(0);
  const VertexId y = target.AddVertex(0);
  const VertexId z = target.AddVertex(0);
  target.AddEdge(x, y, 1);
  target.AddEdge(y, z, 1);
  SubgraphMatcher matcher(pattern, target);
  MatchOptions options;
  std::vector<char> forbidden(target.num_vertices(), 0);
  forbidden[y] = 1;
  options.forbidden_target_vertices = &forbidden;
  EXPECT_FALSE(matcher.Contains(options));
}

TEST(Vf2Test, ForbiddenEdgesBlockEmbeddings) {
  LabeledGraph pattern;
  VertexId a = pattern.AddVertex(0);
  VertexId b = pattern.AddVertex(0);
  pattern.AddEdge(a, b, 1);
  LabeledGraph target;
  const VertexId x = target.AddVertex(0);
  const VertexId y = target.AddVertex(0);
  const EdgeId only = target.AddEdge(x, y, 1);
  SubgraphMatcher matcher(pattern, target);
  MatchOptions options;
  std::vector<char> forbidden(target.edge_capacity(), 0);
  forbidden[only] = 1;
  options.forbidden_target_edges = &forbidden;
  EXPECT_FALSE(matcher.Contains(options));
}

TEST(Vf2Test, EmbeddingMapsAreConsistent) {
  LabeledGraph pattern = Path3(5, 9);
  LabeledGraph target;
  std::vector<VertexId> vs;
  for (int i = 0; i < 6; ++i) vs.push_back(target.AddVertex(5));
  for (int i = 0; i + 1 < 6; ++i) target.AddEdge(vs[i], vs[i + 1], 9);
  SubgraphMatcher matcher(pattern, target);
  std::size_t checked = 0;
  matcher.ForEachEmbedding({}, [&](const Embedding& emb) {
    ++checked;
    std::set<EdgeId> used_edges;
    pattern.ForEachEdge([&](EdgeId pe) {
      const EdgeId te = emb.edge_map[pe];
      ASSERT_TRUE(target.edge_alive(te));
      EXPECT_TRUE(used_edges.insert(te).second) << "edge reused";
      const auto& pedge = pattern.edge(pe);
      const auto& tedge = target.edge(te);
      EXPECT_EQ(emb.vertex_map[pedge.src], tedge.src);
      EXPECT_EQ(emb.vertex_map[pedge.dst], tedge.dst);
      EXPECT_EQ(pedge.label, tedge.label);
    });
    return true;
  });
  EXPECT_EQ(checked, 4u);  // 4 positions for a 2-edge path in a 5-edge path
}

TEST(Vf2Test, TombstonedTargetEdgesInvisible) {
  LabeledGraph pattern;
  VertexId a = pattern.AddVertex(0);
  VertexId b = pattern.AddVertex(0);
  pattern.AddEdge(a, b, 1);
  LabeledGraph target;
  const VertexId x = target.AddVertex(0);
  const VertexId y = target.AddVertex(0);
  const EdgeId e = target.AddEdge(x, y, 1);
  EXPECT_TRUE(ContainsSubgraph(pattern, target));
  target.RemoveEdge(e);
  EXPECT_FALSE(ContainsSubgraph(pattern, target));
}

TEST(Vf2Test, SearchStepBudgetAborts) {
  // A pattern of identical vertices against a large uniform clique-ish
  // target: with a step budget of 1 the matcher must give up and report no
  // embeddings rather than hang.
  LabeledGraph pattern = Path3(0, 0);
  LabeledGraph target;
  std::vector<VertexId> vs;
  for (int i = 0; i < 10; ++i) vs.push_back(target.AddVertex(0));
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (i != j) target.AddEdge(vs[i], vs[j], 0);
    }
  }
  SubgraphMatcher matcher(pattern, target);
  MatchOptions options;
  options.max_search_steps = 1;
  EXPECT_EQ(matcher.CountEmbeddings(0, options), 0u);
}

TEST(Vf2InducedTest, ExtraEdgeBlocksInducedMatch) {
  // Pattern: a -> b only. Target: a -> b plus b -> a. Non-induced matches;
  // induced does not (the back edge is extra).
  LabeledGraph pattern;
  const VertexId a = pattern.AddVertex(0);
  const VertexId b = pattern.AddVertex(0);
  pattern.AddEdge(a, b, 1);
  LabeledGraph target;
  const VertexId x = target.AddVertex(0);
  const VertexId y = target.AddVertex(0);
  target.AddEdge(x, y, 1);
  target.AddEdge(y, x, 1);
  EXPECT_TRUE(ContainsSubgraph(pattern, target));
  EXPECT_FALSE(ContainsInducedSubgraph(pattern, target));
}

TEST(Vf2InducedTest, ExactMultiplicityRequired) {
  LabeledGraph pattern;
  const VertexId a = pattern.AddVertex(0);
  const VertexId b = pattern.AddVertex(0);
  pattern.AddEdge(a, b, 1);
  LabeledGraph doubled;
  const VertexId x = doubled.AddVertex(0);
  const VertexId y = doubled.AddVertex(0);
  doubled.AddEdge(x, y, 1);
  doubled.AddEdge(x, y, 1);
  EXPECT_TRUE(ContainsSubgraph(pattern, doubled));
  EXPECT_FALSE(ContainsInducedSubgraph(pattern, doubled));
}

TEST(Vf2InducedTest, MatchesWhenNeighborhoodExact) {
  // Target has an extra vertex with edges elsewhere; the induced pair
  // (x, y) is exactly the pattern.
  LabeledGraph pattern;
  const VertexId a = pattern.AddVertex(0);
  const VertexId b = pattern.AddVertex(0);
  pattern.AddEdge(a, b, 1);
  LabeledGraph target;
  const VertexId x = target.AddVertex(0);
  const VertexId y = target.AddVertex(0);
  const VertexId z = target.AddVertex(0);
  target.AddEdge(x, y, 1);
  target.AddEdge(y, z, 2);
  target.AddEdge(z, x, 3);
  EXPECT_TRUE(ContainsInducedSubgraph(pattern, target));
}

TEST(Vf2InducedTest, SelfLoopExactness) {
  LabeledGraph pattern;
  const VertexId a = pattern.AddVertex(0);
  pattern.AddEdge(a, a, 1);
  LabeledGraph target;
  const VertexId x = target.AddVertex(0);
  target.AddEdge(x, x, 1);
  EXPECT_TRUE(ContainsInducedSubgraph(pattern, target));
  target.AddEdge(x, x, 2);  // extra loop with a different label
  EXPECT_FALSE(ContainsInducedSubgraph(pattern, target));
}

// Property test: VF2 count equals brute force on random small graphs.
class Vf2RandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Vf2RandomTest, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    // Random target: 4-6 vertices, up to 10 edges, small label alphabets.
    LabeledGraph target;
    const std::size_t nt = 4 + rng.NextBounded(3);
    for (std::size_t i = 0; i < nt; ++i) {
      target.AddVertex(static_cast<Label>(rng.NextBounded(2)));
    }
    const std::size_t et = 3 + rng.NextBounded(8);
    for (std::size_t i = 0; i < et; ++i) {
      target.AddEdge(static_cast<VertexId>(rng.NextBounded(nt)),
                     static_cast<VertexId>(rng.NextBounded(nt)),
                     static_cast<Label>(rng.NextBounded(2)));
    }
    // Random pattern: 2-3 vertices, 1-3 edges.
    LabeledGraph pattern;
    const std::size_t np = 2 + rng.NextBounded(2);
    for (std::size_t i = 0; i < np; ++i) {
      pattern.AddVertex(static_cast<Label>(rng.NextBounded(2)));
    }
    const std::size_t ep = 1 + rng.NextBounded(3);
    for (std::size_t i = 0; i < ep; ++i) {
      pattern.AddEdge(static_cast<VertexId>(rng.NextBounded(np)),
                      static_cast<VertexId>(rng.NextBounded(np)),
                      static_cast<Label>(rng.NextBounded(2)));
    }
    const std::uint64_t expected = BruteForceCount(pattern, target);
    const std::uint64_t actual = CountEmbeddings(pattern, target);
    ASSERT_EQ(actual, expected)
        << "trial " << trial << "\npattern:\n" << pattern.DebugString()
        << "target:\n" << target.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Vf2RandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace tnmine::iso
