#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tnmine::common {
namespace {

TEST(ParallelismTest, ResolveDefaultsToHardwareConcurrency) {
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(Parallelism{}.Resolve(), hw == 0 ? 1 : hw);
  EXPECT_EQ(Parallelism{3}.Resolve(), 3u);
  EXPECT_EQ(Parallelism::Serial().Resolve(), 1u);
}

TEST(ThreadPoolTest, PoolOfSizeOneRunsSeriallyOnCallerThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<std::size_t> order;
  std::vector<std::thread::id> thread_ids;
  pool.ParallelFor(16, [&](std::size_t i) {
    // Safe unsynchronized: a size-1 pool must run inline.
    order.push_back(i);
    thread_ids.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);  // serial == in-order
    EXPECT_EQ(thread_ids[i], std::this_thread::get_id());
  }
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelMapReturnsResultsInInputOrder) {
  ThreadPool pool(4);
  const std::vector<std::size_t> out =
      pool.ParallelMap<std::size_t>(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, FreeFunctionsUseSharedPool) {
  std::atomic<std::size_t> sum{0};
  ParallelFor(Parallelism{3}, 100,
              [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
  const std::vector<int> doubled = ParallelMap<int>(
      Parallelism{4}, 5, [](std::size_t i) { return static_cast<int>(2 * i); });
  EXPECT_EQ(doubled, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [](std::size_t i) {
                         if (i == 37) {
                           throw std::runtime_error("lane failure");
                         }
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, LowestIndexExceptionWinsWhenSerial) {
  ThreadPool pool(1);
  try {
    pool.ParallelFor(10, [](std::size_t i) {
      throw std::runtime_error("item " + std::to_string(i));
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "item 0");
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   50, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<std::size_t> count{0};
  pool.ParallelFor(50, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<std::size_t>> inner_sums(8);
  pool.ParallelFor(8, [&](std::size_t outer) {
    // The nested call must not block on pool lanes the outer job holds.
    pool.ParallelFor(100, [&](std::size_t inner) {
      inner_sums[outer].fetch_add(inner);
    });
  });
  for (std::size_t outer = 0; outer < 8; ++outer) {
    EXPECT_EQ(inner_sums[outer].load(), 4950u);
  }
}

TEST(ThreadPoolTest, ZeroAndSingleItemJobs) {
  ThreadPool pool(4);
  std::atomic<std::size_t> count{0};
  pool.ParallelFor(0, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0u);
  pool.ParallelFor(1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1u);
}

TEST(ThreadPoolTest, ConcurrentSubmittersBothComplete) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  std::thread other([&] {
    pool.ParallelFor(1000, [&](std::size_t) { total.fetch_add(1); });
  });
  pool.ParallelFor(1000, [&](std::size_t) { total.fetch_add(1); });
  other.join();
  EXPECT_EQ(total.load(), 2000u);
}

TEST(ThreadPoolTest, FirstExceptionShortCircuitsSiblings) {
  // Regression: before the pool-wide cancel flag, sibling lanes kept
  // grinding through their whole chunk after a task threw. The thrower
  // waits until another lane has demonstrably executed work, throws, and
  // then the remaining million items must be skipped, not run.
  ThreadPool pool(2);
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> at_throw{0};
  const std::size_t n = 1 << 20;
  try {
    pool.ParallelFor(n, [&](std::size_t i) {
      if (i == 0) {
        // Handshake: make sure a sibling lane is actively executing
        // before throwing, so the short-circuit is actually exercised.
        while (executed.load() < 1000) std::this_thread::yield();
        at_throw.store(executed.load());
        throw std::runtime_error("boom");
      }
      executed.fetch_add(1);
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Siblings may finish the items already in flight (one chunk per lane)
  // but must not start fresh chunks after the cancel flag is set.
  EXPECT_LE(executed.load(), at_throw.load() + 4096);
  EXPECT_LT(executed.load(), n - 1);
}

TEST(ThreadPoolTest, CallerCancelTokenStopsTheJob) {
  ThreadPool pool(2);
  CancelToken cancel;
  std::atomic<std::size_t> executed{0};
  const std::size_t n = 1 << 20;
  pool.ParallelFor(
      n,
      [&](std::size_t) {
        if (executed.fetch_add(1) == 100) cancel.RequestCancel();
      },
      &cancel);
  // The job returns without an exception; most items never ran.
  EXPECT_LT(executed.load(), n);
  EXPECT_GE(executed.load(), 100u);
}

TEST(ThreadPoolTest, MaxThreadsClampIsHonored) {
  ThreadPool pool(8);
  std::mutex mu;
  std::set<std::thread::id> lanes;
  pool.Run(2000, 2, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    lanes.insert(std::this_thread::get_id());
  });
  // At most 2 lanes may participate (submitter + 1 worker).
  EXPECT_LE(lanes.size(), 2u);
}

}  // namespace
}  // namespace tnmine::common
