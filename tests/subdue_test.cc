#include "subdue/subdue.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "iso/canonical.h"
#include "subdue/mdl.h"

namespace tnmine::subdue {
namespace {

using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

/// k disjoint copies of the pattern A -[1]-> B -[2]-> C, plus `noise`
/// random extra edges among fresh vertices.
LabeledGraph RepeatedChains(int copies, int noise, std::uint64_t seed) {
  LabeledGraph g;
  for (int i = 0; i < copies; ++i) {
    const VertexId a = g.AddVertex(10);
    const VertexId b = g.AddVertex(11);
    const VertexId c = g.AddVertex(12);
    g.AddEdge(a, b, 1);
    g.AddEdge(b, c, 2);
  }
  Rng rng(seed);
  std::vector<VertexId> extras;
  for (int i = 0; i < noise; ++i) {
    extras.push_back(g.AddVertex(static_cast<Label>(20 + rng.NextBounded(3))));
  }
  for (int i = 0; i + 1 < noise; ++i) {
    g.AddEdge(extras[i], extras[rng.NextBounded(extras.size())],
              static_cast<Label>(5 + rng.NextBounded(2)));
  }
  return g;
}

TEST(MdlTest, DescriptionLengthBasics) {
  LabeledGraph empty;
  EXPECT_EQ(DescriptionLengthBits(empty), 0.0);
  LabeledGraph one;
  one.AddVertex(0);
  const double dl1 = DescriptionLengthBits(one);
  LabeledGraph two = one;
  two.AddVertex(1);
  two.AddEdge(0, 1, 0);
  const double dl2 = DescriptionLengthBits(two);
  EXPECT_GT(dl2, dl1);
  // Bigger alphabet => more bits per label.
  EXPECT_GT(DescriptionLengthBits(two, 16, 16), dl2);
}

TEST(MdlTest, MoreEdgesMoreBits) {
  LabeledGraph g;
  for (int i = 0; i < 6; ++i) g.AddVertex(0);
  double prev = DescriptionLengthBits(g);
  for (int i = 0; i < 5; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1), 1);
    const double now = DescriptionLengthBits(g);
    EXPECT_GT(now, prev);
    prev = now;
  }
}

TEST(MdlTest, GraphSizeIsVerticesPlusEdges) {
  const LabeledGraph g = RepeatedChains(2, 0, 1);
  EXPECT_EQ(GraphSize(g), 6u + 4u);
}

TEST(CompressTest, ReplacesDisjointInstances) {
  const LabeledGraph g = RepeatedChains(3, 0, 1);
  // Substructure: the full chain pattern with its three instances.
  Substructure sub;
  const VertexId a = sub.pattern.AddVertex(10);
  const VertexId b = sub.pattern.AddVertex(11);
  const VertexId c = sub.pattern.AddVertex(12);
  sub.pattern.AddEdge(a, b, 1);
  sub.pattern.AddEdge(b, c, 2);
  for (int i = 0; i < 3; ++i) {
    Instance inst;
    inst.vertices = {static_cast<VertexId>(3 * i),
                     static_cast<VertexId>(3 * i + 1),
                     static_cast<VertexId>(3 * i + 2)};
    inst.edges = {static_cast<graph::EdgeId>(2 * i),
                  static_cast<graph::EdgeId>(2 * i + 1)};
    sub.instances.push_back(inst);
  }
  const LabeledGraph compressed = CompressGraph(g, sub, 99);
  EXPECT_EQ(compressed.num_vertices(), 3u);  // one vertex per instance
  EXPECT_EQ(compressed.num_edges(), 0u);
  for (VertexId v = 0; v < compressed.num_vertices(); ++v) {
    EXPECT_EQ(compressed.vertex_label(v), 99);
  }
}

TEST(CompressTest, BoundaryEdgesReattach) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(1);
  const VertexId b = g.AddVertex(2);
  const VertexId x = g.AddVertex(3);
  const graph::EdgeId ab = g.AddEdge(a, b, 1);
  g.AddEdge(x, a, 7);  // boundary edge into the instance
  g.AddEdge(b, x, 8);  // boundary edge out of the instance
  Substructure sub;
  const VertexId pa = sub.pattern.AddVertex(1);
  const VertexId pb = sub.pattern.AddVertex(2);
  sub.pattern.AddEdge(pa, pb, 1);
  sub.instances.push_back(Instance{{a, b}, {ab}});
  const LabeledGraph compressed = CompressGraph(g, sub, 50);
  EXPECT_EQ(compressed.num_vertices(), 2u);  // instance vertex + x
  EXPECT_EQ(compressed.num_edges(), 2u);     // both boundary edges kept
  compressed.ForEachEdge([&](graph::EdgeId e) {
    const auto& edge = compressed.edge(e);
    EXPECT_TRUE(edge.label == 7 || edge.label == 8);
  });
}

TEST(CompressTest, InternalNonInstanceEdgeBecomesSelfLoop) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(1);
  const VertexId b = g.AddVertex(2);
  const graph::EdgeId ab = g.AddEdge(a, b, 1);
  g.AddEdge(b, a, 9);  // not part of the instance
  Substructure sub;
  sub.pattern.AddVertex(1);
  sub.pattern.AddVertex(2);
  sub.pattern.AddEdge(0, 1, 1);
  sub.instances.push_back(Instance{{a, b}, {ab}});
  const LabeledGraph compressed = CompressGraph(g, sub, 50);
  EXPECT_EQ(compressed.num_vertices(), 1u);
  EXPECT_EQ(compressed.num_edges(), 1u);
  compressed.ForEachEdge([&](graph::EdgeId e) {
    EXPECT_EQ(compressed.edge(e).src, compressed.edge(e).dst);
    EXPECT_EQ(compressed.edge(e).label, 9);
  });
}

TEST(SubdueTest, FindsRepeatedChainWithMdl) {
  const LabeledGraph g = RepeatedChains(8, 6, 3);
  SubdueOptions options;
  options.method = EvalMethod::kMdl;
  options.beam_width = 4;
  options.num_best = 3;
  options.limit = 200;
  const SubdueResult r = DiscoverSubstructures(g, options);
  ASSERT_FALSE(r.best.empty());
  const Substructure& top = r.best.front();
  EXPECT_GT(top.value, 1.0);  // it compresses
  EXPECT_GE(top.pattern.num_edges(), 1u);
  EXPECT_GE(top.non_overlapping_instances, 8u);
  // The best substructure is (part of) the planted chain.
  LabeledGraph chain;
  const VertexId a = chain.AddVertex(10);
  const VertexId b = chain.AddVertex(11);
  const VertexId c = chain.AddVertex(12);
  chain.AddEdge(a, b, 1);
  chain.AddEdge(b, c, 2);
  EXPECT_EQ(top.code, iso::CanonicalCode(chain));
}

TEST(SubdueTest, RespectsNumBestAndOrdering) {
  const LabeledGraph g = RepeatedChains(5, 4, 5);
  SubdueOptions options;
  options.num_best = 5;
  options.limit = 100;
  const SubdueResult r = DiscoverSubstructures(g, options);
  ASSERT_LE(r.best.size(), 5u);
  for (std::size_t i = 1; i < r.best.size(); ++i) {
    EXPECT_GE(r.best[i - 1].value, r.best[i].value);
  }
}

TEST(SubdueTest, LimitBoundsEvaluations) {
  const LabeledGraph g = RepeatedChains(6, 10, 7);
  SubdueOptions options;
  options.limit = 10;
  const SubdueResult r = DiscoverSubstructures(g, options);
  EXPECT_LE(r.substructures_evaluated, 10u);
}

TEST(SubdueTest, MaxPatternEdgesCapsGrowth) {
  const LabeledGraph g = RepeatedChains(6, 0, 9);
  SubdueOptions options;
  options.max_pattern_edges = 1;
  options.limit = 100;
  const SubdueResult r = DiscoverSubstructures(g, options);
  for (const Substructure& sub : r.best) {
    EXPECT_LE(sub.pattern.num_edges(), 1u);
  }
}

TEST(SubdueTest, OverlapCountsDiffer) {
  // A star: spokes share the hub, so instances of the 1-edge pattern all
  // overlap at the hub.
  LabeledGraph g;
  const VertexId hub = g.AddVertex(0);
  for (int i = 0; i < 6; ++i) g.AddEdge(hub, g.AddVertex(1), 1);
  SubdueOptions options;
  options.method = EvalMethod::kSetCover;
  options.max_pattern_edges = 1;
  options.limit = 50;
  options.allow_overlap = false;
  const SubdueResult no_overlap = DiscoverSubstructures(g, options);
  options.allow_overlap = true;
  const SubdueResult with_overlap = DiscoverSubstructures(g, options);
  // Find the hub->spoke 1-edge substructure in both results.
  auto find_edge_sub = [](const SubdueResult& r) -> const Substructure* {
    for (const Substructure& s : r.best) {
      if (s.pattern.num_edges() == 1) return &s;
    }
    return nullptr;
  };
  const Substructure* a = find_edge_sub(no_overlap);
  const Substructure* b = find_edge_sub(with_overlap);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->non_overlapping_instances, 1u);  // hub used once
  EXPECT_EQ(a->value, 1.0);
  EXPECT_EQ(b->value, 6.0);  // all six overlapping instances counted
}

TEST(SubdueTest, SizePrincipleFindsLargerPatternThanMdlOnUniformLabels) {
  // Uniform vertex labels (the paper's structural-similarity setting):
  // MDL favors tiny patterns; Size with a pattern-size floor behaves
  // better. Here we verify both run and produce compressing results, and
  // that the Size run can reach larger patterns.
  Rng rng(21);
  LabeledGraph g;
  // Plant 6 copies of a 4-edge "bow-tie-ish" motif with uniform vertex
  // labels but distinctive edge labels.
  for (int i = 0; i < 6; ++i) {
    const VertexId a = g.AddVertex(0);
    const VertexId b = g.AddVertex(0);
    const VertexId c = g.AddVertex(0);
    const VertexId d = g.AddVertex(0);
    g.AddEdge(a, b, 1);
    g.AddEdge(b, c, 2);
    g.AddEdge(b, d, 3);
    g.AddEdge(d, a, 4);
  }
  for (int i = 0; i < 8; ++i) {
    const VertexId x = g.AddVertex(0);
    const VertexId y = g.AddVertex(0);
    g.AddEdge(x, y, static_cast<Label>(1 + rng.NextBounded(4)));
  }
  SubdueOptions options;
  options.limit = 400;
  options.beam_width = 5;
  options.num_best = 5;
  options.method = EvalMethod::kSize;
  options.max_pattern_edges = 4;
  const SubdueResult size_result = DiscoverSubstructures(g, options);
  ASSERT_FALSE(size_result.best.empty());
  std::size_t size_max_edges = 0;
  for (const auto& s : size_result.best) {
    size_max_edges = std::max(size_max_edges, s.pattern.num_edges());
  }
  EXPECT_EQ(size_max_edges, 4u);  // reaches the planted motif
  EXPECT_GT(size_result.best.front().value, 1.0);
}

TEST(SubdueTest, HierarchicalCompressionShrinksGraph) {
  const LabeledGraph g = RepeatedChains(8, 4, 11);
  SubdueOptions options;
  options.limit = 150;
  const auto levels = HierarchicalDiscover(g, options, 3);
  ASSERT_FALSE(levels.empty());
  std::size_t prev_size = GraphSize(g);
  for (const HierarchyLevel& level : levels) {
    const std::size_t now = GraphSize(level.compressed);
    EXPECT_LT(now, prev_size);
    prev_size = now;
  }
}

TEST(SubdueTest, EmptyEdgeGraph) {
  LabeledGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  SubdueOptions options;
  options.limit = 10;
  const SubdueResult r = DiscoverSubstructures(g, options);
  // Only the single-vertex substructure exists; nothing compresses.
  ASSERT_FALSE(r.best.empty());
  EXPECT_EQ(r.best.front().pattern.num_edges(), 0u);
}

}  // namespace
}  // namespace tnmine::subdue
