// End-to-end integration tests: the full Section-5/6/7 pipelines on one
// small synthetic dataset, asserting cross-module invariants at every
// stage (dataset -> OD graph -> partitioning -> mining -> ranking, and
// dataset -> table -> rules/tree/clusters).

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "core/episodes.h"
#include "core/interestingness.h"
#include "core/miner.h"
#include "data/generator.h"
#include "data/od_graph.h"
#include "graph/algorithms.h"
#include "iso/vf2.h"
#include "ml/apriori.h"
#include "ml/decision_tree.h"
#include "ml/em.h"
#include "pattern/render.h"
#include "partition/split_graph.h"

namespace tnmine {
namespace {

const data::TransactionDataset& Dataset() {
  static const auto* ds = new data::TransactionDataset(
      data::GenerateTransportData(data::GeneratorConfig::SmallScale()));
  return *ds;
}

TEST(IntegrationTest, StructuralPipelineInvariants) {
  const data::OdGraph od = data::BuildOdTh(Dataset());
  // Stage 1: the OD graph reflects the dataset exactly.
  ASSERT_EQ(od.graph.num_edges(), Dataset().size());

  // Stage 2: partitioning preserves every edge exactly once.
  partition::SplitOptions split;
  split.num_partitions = 30;
  split.seed = 3;
  const auto parts = partition::SplitGraph(od.graph, split);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.num_edges();
  ASSERT_EQ(total, od.graph.num_edges());

  // Stage 3: mining returns patterns genuinely frequent in the partition
  // set (independent VF2 recount), and every pattern is connected.
  core::StructuralMiningOptions options;
  options.num_partitions = 30;
  options.min_support = 10;
  options.max_pattern_edges = 3;
  options.seed = 3;
  const auto result = core::MineStructuralPatterns(od.graph, options);
  ASSERT_FALSE(result.registry.empty());
  const auto sorted = result.registry.SortedBySupport();
  for (std::size_t i = 0; i < std::min<std::size_t>(10, sorted.size());
       ++i) {
    const auto* p = sorted[i];
    EXPECT_TRUE(graph::IsWeaklyConnected(p->graph));
    std::size_t recount = 0;
    for (const auto& part : parts) {
      recount += iso::ContainsSubgraph(p->graph, part);
    }
    EXPECT_GE(recount, options.min_support) << p->code;
  }

  // Stage 4: ranking is total and rendering never crashes.
  const auto ranked = core::RankPatterns(result.registry);
  EXPECT_EQ(ranked.size(), result.registry.size());
  for (const auto* p : ranked) {
    EXPECT_FALSE(pattern::RenderPattern(*p, &od.discretizer).empty());
  }
}

TEST(IntegrationTest, TemporalPipelineInvariants) {
  core::TemporalMiningOptions options;
  options.min_support_fraction = 0.05;
  options.max_pattern_edges = 3;
  const auto result = core::MineTemporalPatterns(Dataset(), options);
  ASSERT_FALSE(result.registry.empty());
  // Every reported tid indexes a real transaction and the pattern is
  // contained in it.
  const auto& txns = result.partition.transactions;
  for (const auto* p : result.registry.SortedBySupport()) {
    for (std::uint32_t tid : p->tids) {
      ASSERT_LT(tid, txns.size());
      EXPECT_TRUE(iso::ContainsSubgraph(p->graph, txns[tid]));
    }
  }
  // Episode mining and temporal mining see the same dataset: every
  // periodic weekly route's OD pair really recurs in the raw data.
  core::EpisodeOptions episode_options;
  episode_options.min_occurrences = 5;
  const auto episodes = core::MineRouteEpisodes(Dataset(), episode_options);
  std::set<std::pair<data::LocationKey, data::LocationKey>> od_pairs;
  for (const auto& t : Dataset().transactions()) {
    od_pairs.insert({data::TransactionDataset::OriginKey(t),
                     data::TransactionDataset::DestKey(t)});
  }
  for (const auto& route : episodes.routes) {
    EXPECT_TRUE(od_pairs.contains({route.origin, route.dest}));
  }
}

TEST(IntegrationTest, ConventionalPipelineInvariants) {
  const ml::AttributeTable table =
      ml::AttributeTable::FromTransactions(Dataset());
  ASSERT_EQ(table.num_rows(), Dataset().size());
  const ml::AttributeTable disc = table.Discretized(8, true);

  // Rules' supports are consistent with their own counts.
  ml::AprioriOptions apriori;
  apriori.min_support = 0.1;
  apriori.min_confidence = 0.8;
  apriori.max_itemset_size = 2;
  const auto rules = ml::MineAssociationRules(disc, apriori);
  for (const auto& rule : rules.rules) {
    EXPECT_GE(rule.confidence, 0.8);
    EXPECT_GE(rule.support, 0.1);
    EXPECT_GT(rule.lift, 0.0);
  }

  // Tree and clustering run end to end on the same tables.
  const int cls = disc.AttributeIndex("TRANS_MODE");
  const ml::DecisionTree tree = ml::DecisionTree::Train(disc, cls, {});
  EXPECT_GT(tree.Accuracy(disc), 0.9);

  std::vector<int> numeric = {table.AttributeIndex("TOTAL_DISTANCE"),
                              table.AttributeIndex("MOVE_TRANSIT_HOURS")};
  ml::EmOptions em;
  em.num_clusters = 4;
  const ml::EmResult clusters = ml::FitEm(table, numeric, em);
  std::size_t assigned = 0;
  for (int c = 0; c < clusters.num_clusters; ++c) {
    assigned += ml::ClusterSize(clusters, c);
  }
  EXPECT_EQ(assigned, table.num_rows());
}

}  // namespace
}  // namespace tnmine
