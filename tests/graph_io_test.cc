#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <string>

namespace tnmine::graph {
namespace {

LabeledGraph SampleGraph() {
  LabeledGraph g;
  const VertexId a = g.AddVertex(3);
  const VertexId b = g.AddVertex(4);
  const VertexId c = g.AddVertex(3);
  g.AddEdge(a, b, 1);
  g.AddEdge(b, c, 2);
  g.AddEdge(c, a, 1);
  return g;
}

TEST(GraphIoTest, NativeRoundTrip) {
  const LabeledGraph g = SampleGraph();
  const std::string text = WriteNative(g);
  LabeledGraph back;
  std::string error;
  ASSERT_TRUE(ReadNative(text, &back, &error)) << error;
  EXPECT_TRUE(g.StructurallyEqual(back));
}

TEST(GraphIoTest, NativeSkipsTombstones) {
  LabeledGraph g = SampleGraph();
  g.RemoveEdge(1);
  LabeledGraph back;
  std::string error;
  ASSERT_TRUE(ReadNative(WriteNative(g), &back, &error)) << error;
  EXPECT_EQ(back.num_edges(), 2u);
  EXPECT_TRUE(back.IsDense());
}

TEST(GraphIoTest, RejectsCorruptHeader) {
  LabeledGraph g;
  std::string error;
  EXPECT_FALSE(ReadNative("g 2\nv 0 1\n", &g, &error));
  EXPECT_FALSE(error.empty());
}

TEST(GraphIoTest, RejectsDanglingEdge) {
  LabeledGraph g;
  std::string error;
  EXPECT_FALSE(ReadNative("g 1 1\nv 0 1\ne 0 5 2\n", &g, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(GraphIoTest, RejectsCountMismatch) {
  LabeledGraph g;
  std::string error;
  EXPECT_FALSE(ReadNative("g 2 1\nv 0 1\nv 1 1\n", &g, &error));
  EXPECT_NE(error.find("edge count"), std::string::npos);
}

TEST(GraphIoTest, RejectsUnknownDirective) {
  LabeledGraph g;
  std::string error;
  EXPECT_FALSE(ReadNative("g 0 0\nz nonsense\n", &g, &error));
}

TEST(GraphIoTest, RejectsNegativeCounts) {
  // Regression: "g -1 0" used to wrap through the unsigned stream
  // extraction into a multi-exabyte Reserve. Negative counts and ids are
  // now parse errors.
  LabeledGraph g;
  std::string error;
  EXPECT_FALSE(ReadNative("g -1 0\n", &g, &error));
  EXPECT_NE(error.find("count"), std::string::npos);
  EXPECT_FALSE(ReadNative("g 0 -3\n", &g, &error));
  EXPECT_FALSE(ReadNative("g 1 0\nv -1 5\n", &g, &error));
  EXPECT_FALSE(ReadNative("g 2 1\nv 0 1\nv 1 1\ne -1 0 2\n", &g, &error));
}

TEST(GraphIoTest, RejectsOverflowingCounts) {
  LabeledGraph g;
  std::string error;
  // Larger than uint32 / uint64: must fail cleanly, not wrap.
  EXPECT_FALSE(ReadNative("g 99999999999999999999 0\n", &g, &error));
  EXPECT_FALSE(ReadNative("g 8589934592 0\n", &g, &error));  // 2^33
}

TEST(GraphIoTest, HugeDeclaredCountDoesNotOverReserve) {
  // A header declaring ~4e9 vertices with no body must fail on the count
  // mismatch without first attempting a ~100 GB allocation.
  LabeledGraph g;
  std::string error;
  EXPECT_FALSE(ReadNative("g 4000000000 0\n", &g, &error));
  EXPECT_NE(error.find("mismatch"), std::string::npos);
}

TEST(GraphIoTest, ReportsLineAndColumn) {
  LabeledGraph g;
  ParseError err;
  ASSERT_FALSE(ReadNative("g 1 0\nv zero 5\n", &g, &err));
  EXPECT_EQ(err.line, 2u);
  EXPECT_EQ(err.column, 3u);
  EXPECT_NE(err.ToString().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, RejectsTrailingTokens) {
  LabeledGraph g;
  std::string error;
  EXPECT_FALSE(ReadNative("g 1 0 extra\nv 0 1\n", &g, &error));
  EXPECT_FALSE(ReadNative("g 1 0\nv 0 1 extra\n", &g, &error));
}

TEST(GraphIoTest, SubdueFormatUsesOneBasedIds) {
  const std::string text = WriteSubdueFormat(SampleGraph());
  EXPECT_NE(text.find("v 1 3"), std::string::npos);
  EXPECT_NE(text.find("v 2 4"), std::string::npos);
  EXPECT_NE(text.find("d 1 2 1"), std::string::npos);
}

TEST(GraphIoTest, SubdueFormatRoundTrip) {
  const LabeledGraph g = SampleGraph();
  LabeledGraph back;
  std::string error;
  ASSERT_TRUE(ReadSubdueFormat(WriteSubdueFormat(g), &back, &error))
      << error;
  EXPECT_TRUE(g.StructurallyEqual(back));
  // And the re-serialization is byte-identical.
  EXPECT_EQ(WriteSubdueFormat(back), WriteSubdueFormat(g));
}

TEST(GraphIoTest, SubdueFormatRejectsBadIds) {
  LabeledGraph g;
  std::string error;
  EXPECT_FALSE(ReadSubdueFormat("v 0 3\n", &g, &error));   // 0-based id
  EXPECT_FALSE(ReadSubdueFormat("v 2 3\n", &g, &error));   // sparse id
  EXPECT_FALSE(ReadSubdueFormat("v -1 3\n", &g, &error));  // negative id
  EXPECT_FALSE(ReadSubdueFormat("v 1 3\nd 1 2 0\n", &g, &error));
  EXPECT_FALSE(ReadSubdueFormat("v 1 3\nd 0 1 0\n", &g, &error));
  EXPECT_FALSE(ReadSubdueFormat("v 1 3\nx 1 1 0\n", &g, &error));
}

TEST(GraphIoTest, SubdueFormatSkipsComments) {
  LabeledGraph g;
  std::string error;
  ASSERT_TRUE(ReadSubdueFormat("% SUBDUE comment\nv 1 3\n# hash too\n",
                               &g, &error))
      << error;
  EXPECT_EQ(g.num_vertices(), 1u);
}

TEST(GraphIoTest, FsgFormatEmitsTransactionHeaders) {
  const std::vector<LabeledGraph> txns = {SampleGraph(), SampleGraph()};
  const std::string text = WriteFsgFormat(txns);
  EXPECT_NE(text.find("t # 0"), std::string::npos);
  EXPECT_NE(text.find("t # 1"), std::string::npos);
}

TEST(GraphIoTest, FsgFormatRoundTrip) {
  LabeledGraph second;
  const VertexId x = second.AddVertex(9);
  second.AddEdge(x, x, 4);  // self-loop survives the format
  const std::vector<LabeledGraph> txns = {SampleGraph(), second};
  std::vector<LabeledGraph> back;
  std::string error;
  ASSERT_TRUE(ReadFsgFormat(WriteFsgFormat(txns), &back, &error)) << error;
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back[0].StructurallyEqual(txns[0]));
  EXPECT_TRUE(back[1].StructurallyEqual(txns[1]));
}

TEST(GraphIoTest, FsgFormatAcceptsUndirectedAlias) {
  std::vector<LabeledGraph> back;
  std::string error;
  ASSERT_TRUE(ReadFsgFormat("t # 0\nv 0 1\nv 1 2\nu 0 1 5\n", &back,
                            &error))
      << error;
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].num_edges(), 1u);
}

TEST(GraphIoTest, FsgFormatRejectsGarbage) {
  std::vector<LabeledGraph> back;
  std::string error;
  EXPECT_FALSE(ReadFsgFormat("v 0 1\n", &back, &error));  // vertex first
  EXPECT_FALSE(ReadFsgFormat("t # 0\nv 5 1\n", &back, &error));  // sparse id
  EXPECT_FALSE(ReadFsgFormat("t # 0\nv 0 1\nd 0 9 1\n", &back, &error));
  EXPECT_FALSE(ReadFsgFormat("t # 0\nz nonsense\n", &back, &error));
}

TEST(GraphIoTest, TextFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tnmine_graph_io.txt";
  const std::string payload = WriteNative(SampleGraph());
  ASSERT_TRUE(WriteTextFile(path, payload));
  std::string read_back;
  ASSERT_TRUE(ReadTextFile(path, &read_back));
  EXPECT_EQ(read_back, payload);
  std::remove(path.c_str());
}

TEST(GraphIoTest, ReadMissingFileFails) {
  std::string text;
  EXPECT_FALSE(ReadTextFile("/does/not/exist.graph", &text));
}

// --- StreamFsgTransactions: the bounded-memory reader behind
// `tnshard build --input` (DESIGN.md §16). It must agree transaction for
// transaction with the load-everything ReadFsgFormat.

TEST(GraphIoTest, StreamFsgMatchesReadFsgFormat) {
  std::vector<LabeledGraph> txns = {SampleGraph(), LabeledGraph(),
                                    SampleGraph()};
  const VertexId x = txns[1].AddVertex(7);
  txns[1].AddEdge(x, x, 2);
  const std::string path = ::testing::TempDir() + "/tnmine_stream_fsg.txt";
  ASSERT_TRUE(WriteTextFile(path, WriteFsgFormat(txns)));

  std::vector<LabeledGraph> streamed;
  std::string error;
  ASSERT_TRUE(StreamFsgTransactions(
      path,
      [&](LabeledGraph&& g) {
        streamed.push_back(std::move(g));
        return true;
      },
      &error))
      << error;
  ASSERT_EQ(streamed.size(), txns.size());
  for (std::size_t i = 0; i < txns.size(); ++i) {
    EXPECT_TRUE(streamed[i].StructurallyEqual(txns[i])) << "transaction " << i;
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, StreamFsgEarlyStopIsSuccess) {
  const std::vector<LabeledGraph> txns(4, SampleGraph());
  const std::string path = ::testing::TempDir() + "/tnmine_stream_stop.txt";
  ASSERT_TRUE(WriteTextFile(path, WriteFsgFormat(txns)));
  std::size_t seen = 0;
  std::string error;
  ASSERT_TRUE(StreamFsgTransactions(
      path, [&](LabeledGraph&&) { return ++seen < 2; }, &error))
      << error;
  EXPECT_EQ(seen, 2u);  // the callback's false stopped the scan there
  std::remove(path.c_str());
}

TEST(GraphIoTest, StreamFsgRejectsMalformedAndMissingFiles) {
  const std::string path = ::testing::TempDir() + "/tnmine_stream_bad.txt";
  ASSERT_TRUE(WriteTextFile(path, "t # 0\nv 0 1\nv 1 2\ne 0 9 5\n"));
  std::size_t seen = 0;
  std::string error;
  EXPECT_FALSE(StreamFsgTransactions(
      path,
      [&](LabeledGraph&&) {
        ++seen;
        return true;
      },
      &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(seen, 0u);  // the bad transaction never reached the callback
  std::remove(path.c_str());

  EXPECT_FALSE(StreamFsgTransactions(
      "/does/not/exist.fsg", [](LabeledGraph&&) { return true; }, &error));
}

}  // namespace
}  // namespace tnmine::graph
