#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace tnmine::graph {
namespace {

LabeledGraph TwoTrianglesAndIsolated() {
  LabeledGraph g;
  // Triangle 1: 0 -> 1 -> 2 -> 0, triangle 2: 3 -> 4 -> 5 -> 3, isolated 6.
  for (int i = 0; i < 7; ++i) g.AddVertex(0);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 1);
  g.AddEdge(2, 0, 1);
  g.AddEdge(3, 4, 2);
  g.AddEdge(4, 5, 2);
  g.AddEdge(5, 3, 2);
  return g;
}

TEST(ComponentsTest, FindsComponents) {
  const LabeledGraph g = TwoTrianglesAndIsolated();
  const ComponentResult cc = WeaklyConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 3u);
  EXPECT_EQ(cc.component[0], cc.component[1]);
  EXPECT_EQ(cc.component[1], cc.component[2]);
  EXPECT_EQ(cc.component[3], cc.component[4]);
  EXPECT_NE(cc.component[0], cc.component[3]);
  EXPECT_NE(cc.component[6], cc.component[0]);
  EXPECT_NE(cc.component[6], cc.component[3]);
}

TEST(ComponentsTest, DirectionIgnored) {
  LabeledGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddEdge(1, 0, 1);  // only an in-edge for vertex 0
  EXPECT_TRUE(IsWeaklyConnected(g));
}

TEST(ComponentsTest, TombstonedEdgesDisconnect) {
  LabeledGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  const EdgeId e = g.AddEdge(0, 1, 1);
  EXPECT_TRUE(IsWeaklyConnected(g));
  g.RemoveEdge(e);
  EXPECT_FALSE(IsWeaklyConnected(g));
}

TEST(SplitIntoComponentsTest, SplitsAndDropsIsolated) {
  const LabeledGraph g = TwoTrianglesAndIsolated();
  const std::vector<LabeledGraph> parts = SplitIntoComponents(g);
  ASSERT_EQ(parts.size(), 2u);
  for (const LabeledGraph& part : parts) {
    EXPECT_EQ(part.num_vertices(), 3u);
    EXPECT_EQ(part.num_edges(), 3u);
    EXPECT_TRUE(IsWeaklyConnected(part));
  }
}

TEST(SplitIntoComponentsTest, PreservesTotalEdges) {
  Rng rng(5);
  LabeledGraph g;
  for (int i = 0; i < 60; ++i) g.AddVertex(static_cast<Label>(i % 4));
  for (int i = 0; i < 90; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(60)),
              static_cast<VertexId>(rng.NextBounded(60)),
              static_cast<Label>(rng.NextBounded(5)));
  }
  const auto parts = SplitIntoComponents(g);
  std::size_t total_edges = 0;
  for (const auto& part : parts) total_edges += part.num_edges();
  EXPECT_EQ(total_edges, g.num_edges());
}

TEST(InducedSubgraphTest, KeepsOnlySelectedEndpointEdges) {
  const LabeledGraph g = TwoTrianglesAndIsolated();
  std::vector<VertexId> map;
  const LabeledGraph sub = InducedSubgraph(g, {0, 1, 3}, &map);
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 1u);  // only 0 -> 1 survives
  EXPECT_EQ(map[2], kInvalidVertex);
  EXPECT_NE(map[0], kInvalidVertex);
}

TEST(InducedSubgraphTest, DuplicateSelectionIsIdempotent) {
  const LabeledGraph g = TwoTrianglesAndIsolated();
  const LabeledGraph sub = InducedSubgraph(g, {0, 0, 1, 1});
  EXPECT_EQ(sub.num_vertices(), 2u);
  EXPECT_EQ(sub.num_edges(), 1u);
}

TEST(DegreeStatsTest, MatchesHandComputation) {
  LabeledGraph g;
  for (int i = 0; i < 4; ++i) g.AddVertex(0);
  // Star: 0 -> 1, 0 -> 2, 0 -> 3, and 1 -> 0.
  g.AddEdge(0, 1, 1);
  g.AddEdge(0, 2, 1);
  g.AddEdge(0, 3, 1);
  g.AddEdge(1, 0, 1);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.max_out, 3u);
  EXPECT_EQ(stats.min_out, 0u);
  EXPECT_EQ(stats.max_in, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_out, 1.0);
  EXPECT_DOUBLE_EQ(stats.avg_in, 1.0);
}

TEST(DegreeStatsTest, IgnoresIsolatedVertices) {
  LabeledGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddVertex(0);  // isolated
  g.AddEdge(0, 1, 1);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_DOUBLE_EQ(stats.avg_out, 0.5);  // over the two active vertices
}

TEST(DeduplicateEdgesTest, RemovesExactDuplicatesOnly) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  g.AddEdge(a, b, 1);
  g.AddEdge(a, b, 1);  // duplicate
  g.AddEdge(a, b, 2);  // different label, kept
  g.AddEdge(b, a, 1);  // different direction, kept
  EXPECT_EQ(DeduplicateEdges(&g), 1u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(BfsOrderTest, VisitsReachableOnce) {
  const LabeledGraph g = TwoTrianglesAndIsolated();
  const std::vector<VertexId> order = BfsOrder(g, 0);
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0u);
  std::vector<VertexId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<VertexId>{0, 1, 2}));
}

}  // namespace
}  // namespace tnmine::graph
