#include "iso/canonical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"

namespace tnmine::iso {
namespace {

using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

/// Applies a vertex permutation to `g` (perm[i] = new id of old vertex i).
LabeledGraph Permute(const LabeledGraph& g,
                     const std::vector<VertexId>& perm) {
  LabeledGraph out;
  std::vector<VertexId> inverse(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) inverse[perm[i]] =
      static_cast<VertexId>(i);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    out.AddVertex(g.vertex_label(inverse[i]));
  }
  g.ForEachEdge([&](graph::EdgeId e) {
    const auto& edge = g.edge(e);
    out.AddEdge(perm[edge.src], perm[edge.dst], edge.label);
  });
  return out;
}

LabeledGraph RandomGraph(Rng& rng, std::size_t n, std::size_t m,
                         int vlabels, int elabels) {
  LabeledGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    g.AddVertex(static_cast<Label>(rng.NextBounded(vlabels)));
  }
  for (std::size_t i = 0; i < m; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(n)),
              static_cast<VertexId>(rng.NextBounded(n)),
              static_cast<Label>(rng.NextBounded(elabels)));
  }
  return g;
}

TEST(CanonicalTest, EmptyAndSingleton) {
  LabeledGraph empty;
  EXPECT_EQ(CanonicalCode(empty), "empty");
  LabeledGraph one;
  one.AddVertex(5);
  LabeledGraph other;
  other.AddVertex(6);
  EXPECT_NE(CanonicalCode(one), CanonicalCode(other));
  EXPECT_EQ(CanonicalCode(one), CanonicalCode(one));
}

TEST(CanonicalTest, PermutationInvariance) {
  Rng rng(1);
  LabeledGraph g = RandomGraph(rng, 6, 9, 2, 3);
  const std::string code = CanonicalCode(g);
  std::vector<VertexId> perm(6);
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 20; ++trial) {
    rng.Shuffle(perm);
    EXPECT_EQ(CanonicalCode(Permute(g, perm)), code);
  }
}

TEST(CanonicalTest, DirectionDistinguishes) {
  LabeledGraph ab;
  VertexId a = ab.AddVertex(1);
  VertexId b = ab.AddVertex(2);
  ab.AddEdge(a, b, 0);
  LabeledGraph ba;
  a = ba.AddVertex(1);
  b = ba.AddVertex(2);
  ba.AddEdge(b, a, 0);
  EXPECT_NE(CanonicalCode(ab), CanonicalCode(ba));
}

TEST(CanonicalTest, EdgeLabelDistinguishes) {
  auto build = [](Label e) {
    LabeledGraph g;
    const VertexId a = g.AddVertex(0);
    const VertexId b = g.AddVertex(0);
    g.AddEdge(a, b, e);
    return g;
  };
  EXPECT_NE(CanonicalCode(build(1)), CanonicalCode(build(2)));
}

TEST(CanonicalTest, MultiplicityDistinguishes) {
  auto build = [](int copies) {
    LabeledGraph g;
    const VertexId a = g.AddVertex(0);
    const VertexId b = g.AddVertex(0);
    for (int i = 0; i < copies; ++i) g.AddEdge(a, b, 1);
    return g;
  };
  EXPECT_NE(CanonicalCode(build(1)), CanonicalCode(build(2)));
  EXPECT_NE(CanonicalCode(build(2)), CanonicalCode(build(3)));
}

TEST(CanonicalTest, SelfLoopVsParallel) {
  LabeledGraph loop;
  const VertexId a = loop.AddVertex(0);
  loop.AddVertex(0);
  loop.AddEdge(a, a, 1);
  LabeledGraph plain;
  const VertexId x = plain.AddVertex(0);
  const VertexId y = plain.AddVertex(0);
  plain.AddEdge(x, y, 1);
  EXPECT_NE(CanonicalCode(loop), CanonicalCode(plain));
}

TEST(CanonicalTest, UniformStarIsFast) {
  // 12 identical spokes: transposition pruning must collapse the search.
  LabeledGraph star;
  const VertexId hub = star.AddVertex(0);
  for (int i = 0; i < 12; ++i) star.AddEdge(hub, star.AddVertex(0), 1);
  const std::string code = CanonicalCode(star);
  // Permute and re-check.
  std::vector<VertexId> perm(star.num_vertices());
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(3);
  rng.Shuffle(perm);
  EXPECT_EQ(CanonicalCode(Permute(star, perm)), code);
}

TEST(CanonicalTest, DirectedCyclesOfDifferentLengths) {
  auto cycle = [](int n) {
    LabeledGraph g;
    std::vector<VertexId> vs;
    for (int i = 0; i < n; ++i) vs.push_back(g.AddVertex(0));
    for (int i = 0; i < n; ++i) g.AddEdge(vs[i], vs[(i + 1) % n], 1);
    return g;
  };
  EXPECT_NE(CanonicalCode(cycle(4)), CanonicalCode(cycle(5)));
  // A 6-cycle vs two 3-cycles: same degree sequence, different structure.
  LabeledGraph two_triangles;
  std::vector<VertexId> vs;
  for (int i = 0; i < 6; ++i) vs.push_back(two_triangles.AddVertex(0));
  for (int i = 0; i < 3; ++i) two_triangles.AddEdge(vs[i], vs[(i + 1) % 3], 1);
  for (int i = 0; i < 3; ++i) {
    two_triangles.AddEdge(vs[3 + i], vs[3 + (i + 1) % 3], 1);
  }
  EXPECT_NE(CanonicalCode(cycle(6)), CanonicalCode(two_triangles));
}

TEST(AreIsomorphicTest, PositiveAndNegative) {
  Rng rng(7);
  LabeledGraph g = RandomGraph(rng, 7, 11, 3, 2);
  std::vector<VertexId> perm(7);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  LabeledGraph h = Permute(g, perm);
  EXPECT_TRUE(AreIsomorphic(g, h));
  // Tweak one edge label: no longer isomorphic.
  LabeledGraph damaged = h;
  bool changed = false;
  LabeledGraph rebuilt;
  for (VertexId v = 0; v < damaged.num_vertices(); ++v) {
    rebuilt.AddVertex(damaged.vertex_label(v));
  }
  damaged.ForEachEdge([&](graph::EdgeId e) {
    const auto& edge = damaged.edge(e);
    Label label = edge.label;
    if (!changed) {
      label = label + 100;
      changed = true;
    }
    rebuilt.AddEdge(edge.src, edge.dst, label);
  });
  EXPECT_FALSE(AreIsomorphic(g, rebuilt));
}

TEST(InvariantHashTest, InvariantUnderPermutation) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    LabeledGraph g = RandomGraph(rng, 8, 12, 2, 2);
    std::vector<VertexId> perm(8);
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(perm);
    EXPECT_EQ(InvariantHash(g), InvariantHash(Permute(g, perm)));
  }
}

TEST(InvariantHashTest, UsuallySeparatesDifferentGraphs) {
  Rng rng(13);
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 50; ++i) {
    hashes.insert(InvariantHash(RandomGraph(rng, 6, 10, 3, 3)));
  }
  EXPECT_GT(hashes.size(), 45u);  // near-perfect separation expected
}

// Property: canonical codes agree with pairwise isomorphism classification
// over a pool of random graphs — graphs with equal codes must be accepted
// as isomorphic by independent permutation search, and vice versa.
class CanonicalRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CanonicalRandomTest, CodesPartitionIsomorphismClasses) {
  Rng rng(GetParam());
  std::vector<LabeledGraph> pool;
  // Small graphs so brute-force isomorphism is feasible.
  for (int i = 0; i < 12; ++i) {
    pool.push_back(RandomGraph(rng, 4, 5, 2, 2));
  }
  // Brute-force isomorphism by trying all 4! permutations.
  auto brute_iso = [](const LabeledGraph& a, const LabeledGraph& b) {
    if (a.num_vertices() != b.num_vertices() ||
        a.num_edges() != b.num_edges()) {
      return false;
    }
    std::vector<VertexId> perm(a.num_vertices());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end());
    do {
      LabeledGraph pa;  // a permuted by perm
      std::vector<VertexId> inverse(perm.size());
      for (std::size_t i = 0; i < perm.size(); ++i) {
        inverse[perm[i]] = static_cast<VertexId>(i);
      }
      bool label_ok = true;
      for (std::size_t i = 0; i < perm.size(); ++i) {
        pa.AddVertex(a.vertex_label(inverse[i]));
        if (pa.vertex_label(static_cast<VertexId>(i)) !=
            b.vertex_label(static_cast<VertexId>(i))) {
          label_ok = false;
        }
      }
      if (!label_ok) continue;
      a.ForEachEdge([&](graph::EdgeId e) {
        const auto& edge = a.edge(e);
        pa.AddEdge(perm[edge.src], perm[edge.dst], edge.label);
      });
      if (pa.StructurallyEqual(b)) return true;
    } while (std::next_permutation(perm.begin(), perm.end()));
    return false;
  };
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      const bool codes_equal =
          CanonicalCode(pool[i]) == CanonicalCode(pool[j]);
      const bool actually_iso = brute_iso(pool[i], pool[j]);
      ASSERT_EQ(codes_equal, actually_iso)
          << "i=" << i << " j=" << j << "\n"
          << pool[i].DebugString() << pool[j].DebugString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalRandomTest,
                         ::testing::Values(21, 22, 23, 24, 25));

}  // namespace
}  // namespace tnmine::iso
