#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/date.h"

namespace tnmine::data {
namespace {

Transaction MakeTransaction(std::int64_t id, double olat, double olon,
                            double dlat, double dlon) {
  Transaction t;
  t.id = id;
  t.req_pickup_day = DayNumberFromCivil({2004, 3, 1});
  t.req_delivery_day = t.req_pickup_day + 2;
  t.origin_latitude = olat;
  t.origin_longitude = olon;
  t.dest_latitude = dlat;
  t.dest_longitude = dlon;
  t.total_distance = 300.0;
  t.gross_weight = 12000.0;
  t.transit_hours = 9.5;
  t.mode = TransMode::kTruckload;
  return t;
}

TEST(DatasetStatsTest, EmptyDataset) {
  TransactionDataset ds;
  const DatasetStats stats = ds.ComputeStats();
  EXPECT_EQ(stats.num_transactions, 0u);
  EXPECT_EQ(stats.distinct_locations, 0u);
}

TEST(DatasetStatsTest, CountsDistinctEntities) {
  TransactionDataset ds;
  // A -> B twice (one OD pair), B -> A once, A -> C once.
  ds.Add(MakeTransaction(1, 44.5, -88.0, 40.4, -86.9));
  ds.Add(MakeTransaction(2, 44.5, -88.0, 40.4, -86.9));
  ds.Add(MakeTransaction(3, 40.4, -86.9, 44.5, -88.0));
  ds.Add(MakeTransaction(4, 44.5, -88.0, 33.7, -84.4));
  const DatasetStats stats = ds.ComputeStats();
  EXPECT_EQ(stats.num_transactions, 4u);
  EXPECT_EQ(stats.distinct_locations, 3u);
  EXPECT_EQ(stats.distinct_origins, 2u);
  EXPECT_EQ(stats.distinct_destinations, 3u);
  EXPECT_EQ(stats.distinct_od_pairs, 3u);
  EXPECT_EQ(stats.num_truckload, 4u);
  EXPECT_EQ(stats.num_less_than_truckload, 0u);
}

TEST(DatasetStatsTest, SummariesAndDateRange) {
  TransactionDataset ds;
  Transaction a = MakeTransaction(1, 44.5, -88.0, 40.4, -86.9);
  a.total_distance = 100.0;
  a.req_pickup_day = 100;
  Transaction b = MakeTransaction(2, 44.5, -88.0, 40.4, -86.9);
  b.total_distance = 300.0;
  b.req_pickup_day = 50;
  b.mode = TransMode::kLessThanTruckload;
  ds.Add(a);
  ds.Add(b);
  const DatasetStats stats = ds.ComputeStats();
  EXPECT_DOUBLE_EQ(stats.distance.mean, 200.0);
  EXPECT_EQ(stats.first_pickup_day, 50);
  EXPECT_EQ(stats.last_pickup_day, 100);
  EXPECT_EQ(stats.num_less_than_truckload, 1u);
}

class DatasetCsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/tnmine_dataset_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(DatasetCsvTest, SaveLoadRoundTrip) {
  TransactionDataset ds;
  ds.Add(MakeTransaction(1, 44.5, -88.0, 40.4, -86.9));
  Transaction t2 = MakeTransaction(2, 47.6, -122.3, 21.3, -157.9);
  t2.mode = TransMode::kLessThanTruckload;
  t2.gross_weight = 1500.5;
  t2.transit_hours = 9.25;
  ds.Add(t2);
  std::string error;
  ASSERT_TRUE(ds.SaveCsv(path_, &error)) << error;

  TransactionDataset back;
  ASSERT_TRUE(TransactionDataset::LoadCsv(path_, &back, &error)) << error;
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, 1);
  EXPECT_EQ(back[1].id, 2);
  EXPECT_EQ(back[1].mode, TransMode::kLessThanTruckload);
  EXPECT_DOUBLE_EQ(back[1].gross_weight, 1500.5);
  EXPECT_DOUBLE_EQ(back[1].transit_hours, 9.25);
  EXPECT_EQ(back[1].req_pickup_day, t2.req_pickup_day);
  EXPECT_DOUBLE_EQ(back[1].origin_latitude, 47.6);
}

TEST_F(DatasetCsvTest, LoadRejectsMalformedRow) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs(
      "ID,REQ_PICKUP_DT,REQ_DELIVERY_DT,ORIGIN_LATITUDE,ORIGIN_LONGITUDE,"
      "DEST_LATITUDE,DEST_LONGITUDE,TOTAL_DISTANCE,GROSS_WEIGHT,"
      "MOVE_TRANSIT_HOURS,TRANS_MODE\n",
      f);
  std::fputs(
      "1,2004-03-01,2004-03-03,44.5,-88.0,40.4,-86.9,300,12000,9.5,"
      "HOVERCRAFT\n",
      f);
  std::fclose(f);
  TransactionDataset ds;
  std::string error;
  EXPECT_FALSE(TransactionDataset::LoadCsv(path_, &ds, &error));
  EXPECT_NE(error.find("bad mode"), std::string::npos);
}

TEST_F(DatasetCsvTest, LoadRejectsBadDate) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs(
      "ID,REQ_PICKUP_DT,REQ_DELIVERY_DT,ORIGIN_LATITUDE,ORIGIN_LONGITUDE,"
      "DEST_LATITUDE,DEST_LONGITUDE,TOTAL_DISTANCE,GROSS_WEIGHT,"
      "MOVE_TRANSIT_HOURS,TRANS_MODE\n",
      f);
  std::fputs(
      "1,2004-99-01,2004-03-03,44.5,-88.0,40.4,-86.9,300,12000,9.5,TL\n", f);
  std::fclose(f);
  TransactionDataset ds;
  std::string error;
  EXPECT_FALSE(TransactionDataset::LoadCsv(path_, &ds, &error));
  EXPECT_NE(error.find("bad pickup date"), std::string::npos);
}

TEST_F(DatasetCsvTest, LoadMissingFile) {
  TransactionDataset ds;
  std::string error;
  EXPECT_FALSE(
      TransactionDataset::LoadCsv("/no/such/file.csv", &ds, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TransModeTest, RoundTrip) {
  TransMode mode;
  ASSERT_TRUE(ParseTransMode("TL", &mode));
  EXPECT_EQ(mode, TransMode::kTruckload);
  ASSERT_TRUE(ParseTransMode("LTL", &mode));
  EXPECT_EQ(mode, TransMode::kLessThanTruckload);
  EXPECT_FALSE(ParseTransMode("tl", &mode));
  EXPECT_EQ(ToString(TransMode::kTruckload), "TL");
  EXPECT_EQ(ToString(TransMode::kLessThanTruckload), "LTL");
}

}  // namespace
}  // namespace tnmine::data
