#include "ml/arff.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/generator.h"

namespace tnmine::ml {
namespace {

AttributeTable Sample() {
  AttributeTable t;
  t.AddNumericAttribute("weight");
  t.AddNominalAttribute("mode", {"TL", "LTL"});
  t.AddNominalAttribute("note", {"plain", "with space", "tricky,comma"});
  t.AddRow({120.5, 0, 0});
  t.AddRow({44000, 1, 1});
  t.AddRow({3.25, 1, 2});
  return t;
}

TEST(ArffTest, WriteContainsHeaderAndData) {
  const std::string text = WriteArff(Sample(), "shipments");
  EXPECT_NE(text.find("@relation shipments"), std::string::npos);
  EXPECT_NE(text.find("@attribute weight numeric"), std::string::npos);
  EXPECT_NE(text.find("@attribute mode {TL,LTL}"), std::string::npos);
  EXPECT_NE(text.find("'with space'"), std::string::npos);
  EXPECT_NE(text.find("@data"), std::string::npos);
  EXPECT_NE(text.find("120.5,TL,plain"), std::string::npos);
}

TEST(ArffTest, RoundTrip) {
  const AttributeTable original = Sample();
  AttributeTable back;
  std::string error;
  ASSERT_TRUE(ReadArff(WriteArff(original, "r"), &back, &error)) << error;
  ASSERT_EQ(back.num_rows(), original.num_rows());
  ASSERT_EQ(back.num_attributes(), original.num_attributes());
  for (int a = 0; a < original.num_attributes(); ++a) {
    EXPECT_EQ(back.attribute(a).name, original.attribute(a).name);
    EXPECT_EQ(back.attribute(a).kind, original.attribute(a).kind);
    EXPECT_EQ(back.attribute(a).values, original.attribute(a).values);
  }
  for (std::size_t r = 0; r < original.num_rows(); ++r) {
    for (int a = 0; a < original.num_attributes(); ++a) {
      EXPECT_DOUBLE_EQ(back.value(r, a), original.value(r, a));
    }
  }
}

TEST(ArffTest, SkipsCommentsAndBlankLines) {
  const std::string text =
      "% a comment\n@relation r\n\n@attribute x numeric\n@data\n% mid\n"
      "1.5\n\n2.5\n";
  AttributeTable table;
  std::string error;
  ASSERT_TRUE(ReadArff(text, &table, &error)) << error;
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(table.value(1, 0), 2.5);
}

TEST(ArffTest, RejectsUnknownNominalValue) {
  const std::string text =
      "@relation r\n@attribute m {a,b}\n@data\nc\n";
  AttributeTable table;
  std::string error;
  EXPECT_FALSE(ReadArff(text, &table, &error));
  EXPECT_NE(error.find("unknown nominal"), std::string::npos);
}

TEST(ArffTest, RejectsBadNumeric) {
  const std::string text =
      "@relation r\n@attribute x numeric\n@data\nnot-a-number\n";
  AttributeTable table;
  std::string error;
  EXPECT_FALSE(ReadArff(text, &table, &error));
}

TEST(ArffTest, RejectsWrongCellCount) {
  const std::string text =
      "@relation r\n@attribute x numeric\n@attribute y numeric\n@data\n1\n";
  AttributeTable table;
  std::string error;
  EXPECT_FALSE(ReadArff(text, &table, &error));
  EXPECT_NE(error.find("cell count"), std::string::npos);
}

TEST(ArffTest, RejectsMissingData) {
  AttributeTable table;
  std::string error;
  EXPECT_FALSE(ReadArff("@relation r\n@attribute x numeric\n", &table,
                        &error));
}

TEST(ArffTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tnmine_arff_test.arff";
  const auto ds =
      data::GenerateTransportData(data::GeneratorConfig::SmallScale());
  const AttributeTable table = AttributeTable::FromTransactions(ds);
  std::string error;
  ASSERT_TRUE(SaveArff(table, "transport", path, &error)) << error;
  AttributeTable back;
  ASSERT_TRUE(LoadArff(path, &back, &error)) << error;
  EXPECT_EQ(back.num_rows(), table.num_rows());
  EXPECT_EQ(back.num_attributes(), table.num_attributes());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tnmine::ml
