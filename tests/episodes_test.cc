#include "core/episodes.h"

#include <gtest/gtest.h>

#include "data/generator.h"

namespace tnmine::core {
namespace {

using data::Transaction;
using data::TransactionDataset;

Transaction Txn(double olat, double olon, double dlat, double dlon,
                std::int64_t day) {
  Transaction t;
  t.origin_latitude = olat;
  t.origin_longitude = olon;
  t.dest_latitude = dlat;
  t.dest_longitude = dlon;
  t.req_pickup_day = day;
  t.req_delivery_day = day + 1;
  t.gross_weight = 1000;
  t.total_distance = 100;
  t.transit_hours = 10;
  return t;
}

TEST(EpisodesTest, FindsWeeklyRoute) {
  TransactionDataset ds;
  // Weekly A -> B for 8 weeks.
  for (int w = 0; w < 8; ++w) {
    ds.Add(Txn(40.0, -90.0, 41.0, -91.0, 100 + 7 * w));
  }
  // Irregular C -> D (not periodic).
  const int irregular_days[] = {100, 101, 120, 150, 152, 199};
  for (int d : irregular_days) ds.Add(Txn(30.0, -80.0, 31.0, -81.0, d));
  EpisodeOptions options;
  options.min_occurrences = 4;
  const EpisodeResult r = MineRouteEpisodes(ds, options);
  ASSERT_EQ(r.routes.size(), 1u);
  EXPECT_DOUBLE_EQ(r.routes[0].median_period_days, 7.0);
  EXPECT_EQ(r.routes[0].pickup_days.size(), 8u);
  EXPECT_NE(EpisodeToString(r.routes[0]).find("every ~7"),
            std::string::npos);
}

TEST(EpisodesTest, ToleratesJitter) {
  TransactionDataset ds;
  const int days[] = {100, 107, 115, 121, 128, 136};  // ~weekly +-1
  for (int d : days) ds.Add(Txn(40.0, -90.0, 41.0, -91.0, d));
  EpisodeOptions options;
  options.min_occurrences = 5;
  options.period_tolerance_days = 1.5;
  const EpisodeResult r = MineRouteEpisodes(ds, options);
  ASSERT_EQ(r.routes.size(), 1u);
  EXPECT_NEAR(r.routes[0].median_period_days, 7.0, 1.0);
}

TEST(EpisodesTest, RejectsAperiodicRoutes) {
  TransactionDataset ds;
  const int days[] = {100, 101, 130, 131, 132, 180};
  for (int d : days) ds.Add(Txn(40.0, -90.0, 41.0, -91.0, d));
  EpisodeOptions options;
  options.min_occurrences = 4;
  options.period_tolerance_days = 1.0;
  const EpisodeResult r = MineRouteEpisodes(ds, options);
  EXPECT_TRUE(r.routes.empty());
}

TEST(EpisodesTest, ChainsPathEpisodes) {
  TransactionDataset ds;
  // A -> B weekly; B -> C departs one day after each A -> B; the path
  // A -> B -> C is never fully present on one day.
  for (int w = 0; w < 6; ++w) {
    ds.Add(Txn(40.0, -90.0, 41.0, -91.0, 100 + 7 * w));
    ds.Add(Txn(41.0, -91.0, 42.0, -92.0, 101 + 7 * w));
  }
  EpisodeOptions options;
  options.min_path_occurrences = 4;
  options.min_leg_gap_days = 1;
  options.max_leg_gap_days = 2;
  const EpisodeResult r = MineRouteEpisodes(ds, options);
  ASSERT_FALSE(r.paths.empty());
  const PathEpisode& top = r.paths.front();
  EXPECT_EQ(top.stops.size(), 3u);
  EXPECT_EQ(top.occurrences, 6u);
  EXPECT_NE(EpisodeToString(top).find("->"), std::string::npos);
}

TEST(EpisodesTest, NoImmediateBounceBack) {
  TransactionDataset ds;
  for (int w = 0; w < 6; ++w) {
    ds.Add(Txn(40.0, -90.0, 41.0, -91.0, 100 + 7 * w));
    ds.Add(Txn(41.0, -91.0, 40.0, -90.0, 101 + 7 * w));
  }
  EpisodeOptions options;
  options.min_path_occurrences = 4;
  options.min_leg_gap_days = 1;
  options.max_leg_gap_days = 2;
  const EpisodeResult r = MineRouteEpisodes(ds, options);
  for (const PathEpisode& p : r.paths) {
    for (std::size_t i = 2; i < p.stops.size(); ++i) {
      EXPECT_NE(p.stops[i], p.stops[i - 2]) << EpisodeToString(p);
    }
  }
}

TEST(EpisodesTest, SyntheticDataHasPlantedSchedules) {
  const auto ds =
      data::GenerateTransportData(data::GeneratorConfig::SmallScale());
  EpisodeOptions options;
  options.min_occurrences = 5;
  options.min_period_days = 5;
  options.max_period_days = 9;
  const EpisodeResult r = MineRouteEpisodes(ds, options);
  // The generator plants weekly scheduled routes; episode mining must
  // recover a healthy number of them.
  EXPECT_GE(r.routes.size(), 10u);
  for (const RouteEpisode& e : r.routes) {
    EXPECT_GE(e.pickup_days.size(), 5u);
    EXPECT_GE(e.median_period_days, 5.0);
    EXPECT_LE(e.median_period_days, 9.0);
  }
}

TEST(EpisodesTest, EmptyDataset) {
  const EpisodeResult r = MineRouteEpisodes(TransactionDataset{}, {});
  EXPECT_TRUE(r.routes.empty());
  EXPECT_TRUE(r.paths.empty());
}

}  // namespace
}  // namespace tnmine::core
