#include "ml/naive_bayes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/random.h"
#include "data/generator.h"
#include "ml/validation.h"

namespace tnmine::ml {
namespace {

AttributeTable GaussianClasses(std::size_t n, std::uint64_t seed) {
  AttributeTable t;
  t.AddNumericAttribute("x");
  t.AddNominalAttribute("class", {"lo", "hi"});
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool hi = rng.NextBool();
    t.AddRow({rng.NextGaussian(hi ? 10.0 : 0.0, 2.0),
              static_cast<double>(hi)});
  }
  return t;
}

TEST(NaiveBayesTest, SeparatesGaussianClasses) {
  const AttributeTable train = GaussianClasses(500, 1);
  const AttributeTable test = GaussianClasses(200, 2);
  const NaiveBayes model = NaiveBayes::Train(train, 1);
  EXPECT_GT(model.Accuracy(test), 0.97);
  EXPECT_EQ(model.Predict({-1.0, 0}), 0);
  EXPECT_EQ(model.Predict({11.0, 0}), 1);
}

TEST(NaiveBayesTest, NominalFeatures) {
  AttributeTable t;
  t.AddNominalAttribute("color", {"red", "blue"});
  t.AddNominalAttribute("class", {"a", "b"});
  for (int i = 0; i < 40; ++i) t.AddRow({0, 0});
  for (int i = 0; i < 40; ++i) t.AddRow({1, 1});
  for (int i = 0; i < 4; ++i) t.AddRow({0, 1});  // some noise
  const NaiveBayes model = NaiveBayes::Train(t, 1);
  EXPECT_EQ(model.Predict({0, 0}), 0);
  EXPECT_EQ(model.Predict({1, 0}), 1);
  EXPECT_GT(model.Accuracy(t), 0.9);
}

TEST(NaiveBayesTest, LaplaceSmoothingHandlesUnseenValues) {
  AttributeTable t;
  t.AddNominalAttribute("f", {"seen", "unseen"});
  t.AddNominalAttribute("class", {"a", "b"});
  for (int i = 0; i < 10; ++i) t.AddRow({0, 0});
  for (int i = 0; i < 10; ++i) t.AddRow({0, 1});
  const NaiveBayes model = NaiveBayes::Train(t, 1);
  // "unseen" never occurred; prediction must not crash or produce -inf
  // dominance.
  const auto scores = model.LogPosterior({1, 0});
  EXPECT_TRUE(std::isfinite(scores[0]));
  EXPECT_TRUE(std::isfinite(scores[1]));
}

TEST(NaiveBayesTest, TransModeScenario) {
  const auto ds =
      data::GenerateTransportData(data::GeneratorConfig::SmallScale());
  const AttributeTable table = AttributeTable::FromTransactions(ds);
  const int cls = table.AttributeIndex("TRANS_MODE");
  const NaiveBayes model = NaiveBayes::Train(table, cls);
  // Gaussian likelihoods are a mediocre fit for the log-normal weights,
  // so NB lands below the tree's ~0.96 — it is the weaker baseline.
  EXPECT_GT(model.Accuracy(table), 0.80);
}

TEST(ConfusionMatrixTest, CountsAndMetrics) {
  ConfusionMatrix m(2);
  // 8 true a (6 right), 12 true b (9 right).
  for (int i = 0; i < 6; ++i) m.Add(0, 0);
  for (int i = 0; i < 2; ++i) m.Add(0, 1);
  for (int i = 0; i < 9; ++i) m.Add(1, 1);
  for (int i = 0; i < 3; ++i) m.Add(1, 0);
  EXPECT_EQ(m.total(), 20u);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 15.0 / 20.0);
  EXPECT_DOUBLE_EQ(m.Recall(0), 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(m.Precision(0), 6.0 / 9.0);
  EXPECT_DOUBLE_EQ(m.Recall(1), 9.0 / 12.0);
  Attribute attr{"class", AttrKind::kNominal, {"a", "b"}};
  const std::string text = m.ToString(attr);
  EXPECT_NE(text.find("a"), std::string::npos);
}

TEST(CrossValidateTest, NaiveBayesOnSeparableData) {
  const AttributeTable table = GaussianClasses(300, 5);
  const CrossValidationResult cv = CrossValidate(
      table, 1, 5, 7,
      [](const AttributeTable& train, int cls) {
        auto model = std::make_shared<NaiveBayes>(
            NaiveBayes::Train(train, cls));
        return [model](const std::vector<double>& row) {
          return model->Predict(row);
        };
      });
  EXPECT_EQ(cv.fold_accuracies.size(), 5u);
  EXPECT_GT(cv.mean_accuracy, 0.95);
  EXPECT_LT(cv.stddev_accuracy, 0.1);
  EXPECT_EQ(cv.confusion.total(), table.num_rows());
}

TEST(CrossValidateTest, FoldsPartitionRows) {
  const AttributeTable table = GaussianClasses(103, 9);  // non-divisible
  const CrossValidationResult cv = CrossValidate(
      table, 1, 4, 11,
      [](const AttributeTable& train, int cls) {
        auto model = std::make_shared<NaiveBayes>(
            NaiveBayes::Train(train, cls));
        return [model](const std::vector<double>& row) {
          return model->Predict(row);
        };
      });
  EXPECT_EQ(cv.confusion.total(), 103u);
}

}  // namespace
}  // namespace tnmine::ml
