#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace tnmine {
namespace {

TEST(ParseCsvLineTest, PlainFields) {
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvLine("a,b,c", &fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, EmptyFields) {
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvLine(",,", &fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"", "", ""}));
}

TEST(ParseCsvLineTest, QuotedFieldWithComma) {
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvLine("\"a,b\",c", &fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a,b", "c"}));
}

TEST(ParseCsvLineTest, EscapedQuote) {
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvLine("\"say \"\"hi\"\"\"", &fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"say \"hi\""}));
}

TEST(ParseCsvLineTest, MalformedUnterminatedQuote) {
  std::vector<std::string> fields;
  EXPECT_FALSE(ParseCsvLine("\"oops", &fields));
}

TEST(ParseCsvLineTest, MalformedQuoteMidField) {
  std::vector<std::string> fields;
  EXPECT_FALSE(ParseCsvLine("ab\"cd\",e", &fields));
}

TEST(EscapeCsvFieldTest, RoundTrips) {
  const std::vector<std::string> cases = {"plain", "with,comma",
                                          "with\"quote", "", "multi\nline"};
  for (const std::string& s : cases) {
    std::vector<std::string> fields;
    ASSERT_TRUE(ParseCsvLine(EscapeCsvField(s), &fields)) << s;
    if (s.find('\n') == std::string::npos) {
      ASSERT_EQ(fields.size(), 1u);
      EXPECT_EQ(fields[0], s);
    }
  }
}

class CsvFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/tnmine_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvFileTest, WriteThenReadRoundTrip) {
  {
    CsvWriter writer(path_);
    ASSERT_TRUE(writer.ok());
    writer.WriteRecord({"id", "origin", "note"});
    writer.WriteRecord({"1", "44.5,-88.0", "plain"});
    writer.WriteRecord({"2", "40.4,-86.9", "has \"quotes\""});
  }
  CsvReader reader(path_);
  ASSERT_TRUE(reader.ok());
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.ReadRecord(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"id", "origin", "note"}));
  ASSERT_TRUE(reader.ReadRecord(&fields));
  EXPECT_EQ(fields[1], "44.5,-88.0");
  ASSERT_TRUE(reader.ReadRecord(&fields));
  EXPECT_EQ(fields[2], "has \"quotes\"");
  EXPECT_FALSE(reader.ReadRecord(&fields));
  EXPECT_TRUE(reader.ok());  // clean EOF, not an error
}

TEST_F(CsvFileTest, MissingFileReportsError) {
  CsvReader reader("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("cannot open"), std::string::npos);
}

TEST_F(CsvFileTest, MalformedRecordStopsWithError) {
  {
    CsvWriter writer(path_);
    ASSERT_TRUE(writer.ok());
    writer.WriteRecord({"good", "row"});
  }
  // Append a malformed line manually.
  FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("bad\"quote,row\n", f);
  std::fclose(f);

  CsvReader reader(path_);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.ReadRecord(&fields));
  EXPECT_FALSE(reader.ReadRecord(&fields));
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("quote"), std::string::npos);
  EXPECT_EQ(reader.parse_error().line, 2u);
  EXPECT_FALSE(reader.parse_error().message.empty());
}

TEST_F(CsvFileTest, RoundTripsEmbeddedNewlinesAndCrs) {
  // Regression: WriteRecord legally quotes fields containing \n and \r;
  // the reader must consume physical lines until the quote closes and
  // preserve every byte inside the quotes.
  const std::vector<std::vector<std::string>> records = {
      {"multi\nline", "plain"},
      {"carriage\rreturn", "cr\r\nlf"},
      {"quotes \"and\" commas, too", ""},
      {"trailing\n", "\nleading"},
      {"\r", "\n"},
  };
  {
    CsvWriter writer(path_);
    ASSERT_TRUE(writer.ok());
    for (const auto& r : records) writer.WriteRecord(r);
    ASSERT_TRUE(writer.ok());
  }
  CsvReader reader(path_);
  ASSERT_TRUE(reader.ok());
  std::vector<std::string> fields;
  for (const auto& expected : records) {
    ASSERT_TRUE(reader.ReadRecord(&fields)) << reader.error();
    EXPECT_EQ(fields, expected);
  }
  EXPECT_FALSE(reader.ReadRecord(&fields));
  EXPECT_TRUE(reader.ok());
}

TEST_F(CsvFileTest, CrlfLineEndingsOutsideQuotes) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("a,b\r\nc,d\r\n", f);
  std::fclose(f);
  CsvReader reader(path_);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.ReadRecord(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(reader.ReadRecord(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"c", "d"}));
  EXPECT_FALSE(reader.ReadRecord(&fields));
  EXPECT_TRUE(reader.ok());
}

TEST_F(CsvFileTest, UnterminatedQuoteAtEofIsAnError) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("a,\"open quote\nnever closes", f);
  std::fclose(f);
  CsvReader reader(path_);
  std::vector<std::string> fields;
  EXPECT_FALSE(reader.ReadRecord(&fields));
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("unterminated"), std::string::npos);
}

TEST_F(CsvFileTest, SkipsBlankLines) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("a,b\n\n\nc,d\n", f);
  std::fclose(f);
  CsvReader reader(path_);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.ReadRecord(&fields));
  EXPECT_EQ(fields[0], "a");
  ASSERT_TRUE(reader.ReadRecord(&fields));
  EXPECT_EQ(fields[0], "c");
  EXPECT_FALSE(reader.ReadRecord(&fields));
}

}  // namespace
}  // namespace tnmine
