#include "pattern/dot.h"

#include <gtest/gtest.h>

namespace tnmine::pattern {
namespace {

using graph::LabeledGraph;
using graph::VertexId;

LabeledGraph Star() {
  LabeledGraph g;
  const VertexId hub = g.AddVertex(0);
  g.AddEdge(hub, g.AddVertex(1), 2);
  g.AddEdge(hub, g.AddVertex(1), 3);
  return g;
}

TEST(DotTest, EmitsDigraphWithEdges) {
  const std::string dot = ToDot(Star());
  EXPECT_NE(dot.find("digraph pattern {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("label=\"2\""), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotTest, VertexLabelsToggle) {
  DotOptions options;
  options.show_vertex_labels = true;
  EXPECT_NE(ToDot(Star(), options).find("(L1)"), std::string::npos);
  options.show_vertex_labels = false;
  EXPECT_EQ(ToDot(Star(), options).find("(L1)"), std::string::npos);
}

TEST(DotTest, IntervalLabelsViaDiscretizer) {
  const Discretizer bins = Discretizer::FromCutPoints({10.0});
  DotOptions options;
  options.bins = &bins;
  LabeledGraph g;
  const VertexId a = g.AddVertex(0);
  g.AddEdge(a, g.AddVertex(0), 0);
  const std::string dot = ToDot(g, options);
  EXPECT_NE(dot.find("(-inf, 10]"), std::string::npos);
}

TEST(DotTest, PatternOverloadIncludesSupport) {
  FrequentPattern p;
  p.graph = Star();
  p.support = 42;
  const std::string dot = ToDot(p);
  EXPECT_NE(dot.find("support 42"), std::string::npos);
}

TEST(DotTest, CustomName) {
  DotOptions options;
  options.name = "figure2";
  EXPECT_NE(ToDot(Star(), options).find("digraph figure2"),
            std::string::npos);
}

}  // namespace
}  // namespace tnmine::pattern
