#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/binning.h"
#include "common/random.h"
#include "common/statistics.h"
#include "generators.h"

namespace tnmine {
namespace {

TEST(BinningPropertyTest, SeededRounds) {
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    Rng rng(seed);
    const auto failure = fuzz::BinningRound(rng);
    ASSERT_FALSE(failure.has_value()) << "seed " << seed << ": " << *failure;
  }
}

TEST(BinningPropertyTest, HistogramAndSummarizeAgreeOnCount) {
  // Every in-range value — including ones exactly on the top edge — is
  // counted by exactly one bucket.
  Rng rng(17);
  for (int round = 0; round < 200; ++round) {
    std::vector<double> values;
    const std::size_t n = 1 + rng.NextBounded(50);
    for (std::size_t i = 0; i < n; ++i) {
      values.push_back(rng.NextDouble(-10.0, 10.0));
    }
    // Force edge collisions: duplicate the extremes a few times.
    values.push_back(*std::min_element(values.begin(), values.end()));
    values.push_back(*std::max_element(values.begin(), values.end()));
    const SummaryStats stats = Summarize(values);
    if (stats.min >= stats.max) continue;
    std::vector<double> edges = {stats.min,
                                 (stats.min + stats.max) / 2.0,
                                 stats.max};
    if (!(edges[0] < edges[1] && edges[1] < edges[2])) continue;
    const auto buckets = Histogram(values, edges);
    std::size_t total = 0;
    for (const auto& b : buckets) total += b.count;
    EXPECT_EQ(total, stats.count) << "round " << round;
  }
}

TEST(BinningPropertyTest, DiscretizedLabelsCoverEveryBin) {
  Rng rng(29);
  for (int round = 0; round < 100; ++round) {
    std::vector<double> values;
    const std::size_t n = 2 + rng.NextBounded(40);
    for (std::size_t i = 0; i < n; ++i) {
      values.push_back(rng.NextDouble(-100.0, 100.0));
    }
    const int bins = 1 + static_cast<int>(rng.NextBounded(6));
    const Discretizer disc = Discretizer::EqualWidth(values, bins);
    std::set<std::string> labels;
    for (int b = 0; b < disc.num_bins(); ++b) {
      labels.insert(disc.IntervalLabel(b));
    }
    // Interval labels are distinct per bin.
    EXPECT_EQ(labels.size(), static_cast<std::size_t>(disc.num_bins()));
    // The maximum value must land in the last bin, not fall off the end.
    const double maxv = *std::max_element(values.begin(), values.end());
    EXPECT_LT(disc.Bin(maxv), disc.num_bins());
  }
}

}  // namespace
}  // namespace tnmine
