#include <gtest/gtest.h>

#include "common/random.h"
#include "generators.h"
#include "ml/arff.h"

namespace tnmine::ml {
namespace {

TEST(ArffPropertyTest, SeededRounds) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    const auto failure = fuzz::ArffRound(rng);
    ASSERT_FALSE(failure.has_value()) << "seed " << seed << ": " << *failure;
  }
}

TEST(ArffPropertyTest, QuotedValuesPreserveWhitespaceAndEscapes) {
  // Regression: SplitList used to trim whitespace inside quoted values,
  // and a value ending in '\' broke the quote escaping.
  AttributeTable table;
  table.AddNominalAttribute("v", {" leading", "trailing ", "back\\slash",
                                  "ends in \\", "quo'te", "com,ma"});
  table.AddRow({0});
  table.AddRow({1});
  table.AddRow({2});
  table.AddRow({3});
  table.AddRow({4});
  table.AddRow({5});
  AttributeTable back;
  ParseError err;
  ASSERT_TRUE(ReadArff(WriteArff(table, "r"), &back, &err))
      << err.ToString();
  std::string why;
  EXPECT_TRUE(fuzz::TablesEqual(table, back, &why)) << why;
}

TEST(ArffPropertyTest, NumericCellsRoundTripExactly) {
  // to_chars emits the shortest representation that parses back to the
  // same double, for every magnitude.
  AttributeTable table;
  table.AddNumericAttribute("x");
  Rng rng(23);
  for (int i = 0; i < 500; ++i) table.AddRow({fuzz::GenFiniteDouble(rng)});
  table.AddRow({0.1});
  table.AddRow({1.0 / 3.0});
  table.AddRow({-0.0});
  table.AddRow({1e-308});
  table.AddRow({1.7976931348623157e308});
  AttributeTable back;
  ParseError err;
  ASSERT_TRUE(ReadArff(WriteArff(table, "r"), &back, &err))
      << err.ToString();
  ASSERT_EQ(back.num_rows(), table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(table.value(r, 0), back.value(r, 0)) << "row " << r;
  }
}

TEST(ArffPropertyTest, MutantsNeverCrash) {
  Rng rng(31);
  for (int i = 0; i < 300; ++i) {
    const AttributeTable table = fuzz::GenTable(rng);
    std::string text = WriteArff(table, "rel");
    text = fuzz::MutateText(rng, std::move(text));
    AttributeTable m;
    ParseError err;
    (void)ReadArff(text, &m, &err);  // accept or reject, never crash
  }
}

}  // namespace
}  // namespace tnmine::ml
