#include <gtest/gtest.h>

#include "common/date.h"
#include "common/random.h"
#include "generators.h"

namespace tnmine {
namespace {

TEST(DatePropertyTest, SeededRounds) {
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    Rng rng(seed);
    const auto failure = fuzz::DateRound(rng);
    ASSERT_FALSE(failure.has_value()) << "seed " << seed << ": " << *failure;
  }
}

TEST(DatePropertyTest, RandomStringsNeverCrashTheParser) {
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    std::string s;
    const std::size_t len = rng.NextBounded(16);
    for (std::size_t j = 0; j < len; ++j) s.push_back(fuzz::NastyChar(rng));
    std::int64_t dn = 0;
    (void)ParseDayNumber(s, &dn);  // accept or reject, never crash
  }
}

TEST(DatePropertyTest, ParseIsInverseOfFormatEverywhere) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t dn = rng.NextInt(-3000000, 3000000);
    std::int64_t back = 0;
    ASSERT_TRUE(ParseDayNumber(FormatDayNumber(dn), &back));
    EXPECT_EQ(back, dn);
  }
}

}  // namespace
}  // namespace tnmine
