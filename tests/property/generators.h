#ifndef TNMINE_TESTS_PROPERTY_GENERATORS_H_
#define TNMINE_TESTS_PROPERTY_GENERATORS_H_

/// Structure-aware input generators and per-format fuzz rounds shared by
/// the deterministic property tests (tests/property/) and the standalone
/// fuzzer (tools/fuzz_io).
///
/// Every round follows the same contract:
///   1. Generate a random in-memory structure from a seeded Rng.
///   2. Write it, read it back, and require exact identity (Write -> Read
///      == id, and for canonical text formats Write(Read(x)) == x).
///   3. Mutate the serialized bytes and require the reader to either
///      succeed or fail cleanly — never crash, hang, or mis-reserve.
///
/// Rounds return std::nullopt on success and a human-readable failure
/// description otherwise, so the property tests and the fuzz tool can
/// share them verbatim. All randomness flows from the caller's Rng, so a
/// failure reproduces from its seed.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/binning.h"
#include "common/csv.h"
#include "common/date.h"
#include "common/random.h"
#include "common/statistics.h"
#include "graph/graph_io.h"
#include "graph/graph_view.h"
#include "graph/labeled_graph.h"
#include "ml/arff.h"
#include "ml/attribute_table.h"

namespace tnmine::fuzz {

/// The serialized bytes most recently handed to a reader by any round on
/// this thread. Rounds refresh it before every parse, so when a round
/// fails the offending input is still here — tools/fuzz_io dumps it as a
/// CI artifact (--artifact-dir) for offline reproduction.
inline std::string& LastInputBytes() {
  thread_local std::string bytes;
  return bytes;
}

// ---------------------------------------------------------------------------
// Generators

/// Characters deliberately chosen to stress quoting and escaping.
inline char NastyChar(Rng& rng) {
  static constexpr char kAlphabet[] =
      "abcXYZ019 \t,\"'\n\r%{}@-+.eE\\#;:";
  const std::size_t n = sizeof(kAlphabet) - 1;  // drop the NUL
  return kAlphabet[rng.NextBounded(n)];
}

/// Arbitrary CSV field content: commas, quotes, CRs, LFs, NULs.
inline std::string GenCsvField(Rng& rng) {
  const std::size_t len = rng.NextBounded(12);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (rng.NextBool(0.05)) {
      out.push_back('\0');  // embedded NUL must survive quoting
    } else {
      out.push_back(NastyChar(rng));
    }
  }
  return out;
}

inline std::vector<std::vector<std::string>> GenCsvRecords(Rng& rng) {
  const std::size_t nrecords = 1 + rng.NextBounded(8);
  std::vector<std::vector<std::string>> records;
  records.reserve(nrecords);
  for (std::size_t r = 0; r < nrecords; ++r) {
    const std::size_t nfields = 1 + rng.NextBounded(5);
    std::vector<std::string> rec;
    rec.reserve(nfields);
    for (std::size_t f = 0; f < nfields; ++f) rec.push_back(GenCsvField(rng));
    records.push_back(std::move(rec));
  }
  return records;
}

inline graph::LabeledGraph GenGraph(Rng& rng, std::size_t max_vertices = 12,
                                    std::size_t max_edges = 24) {
  graph::LabeledGraph g;
  const std::size_t nv = rng.NextBounded(max_vertices + 1);
  for (std::size_t v = 0; v < nv; ++v) {
    g.AddVertex(static_cast<graph::Label>(rng.NextInt(-5, 100)));
  }
  if (nv == 0) return g;
  const std::size_t ne = rng.NextBounded(max_edges + 1);
  for (std::size_t e = 0; e < ne; ++e) {
    const auto src = static_cast<graph::VertexId>(rng.NextBounded(nv));
    const auto dst = static_cast<graph::VertexId>(rng.NextBounded(nv));
    g.AddEdge(src, dst, static_cast<graph::Label>(rng.NextInt(-5, 100)));
  }
  return g;
}

inline std::vector<graph::LabeledGraph> GenTransactions(Rng& rng) {
  const std::size_t n = rng.NextBounded(5);
  std::vector<graph::LabeledGraph> txns;
  txns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) txns.push_back(GenGraph(rng, 6, 10));
  return txns;
}

/// A name or nominal value that the ARFF subset can round-trip: any of the
/// nasty characters except newlines (the format has no newline escape).
inline std::string GenArffString(Rng& rng) {
  const std::size_t len = rng.NextBounded(9);
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    char c = NastyChar(rng);
    while (c == '\n' || c == '\r') c = NastyChar(rng);
    out.push_back(c);
  }
  return out;
}

/// A finite double spanning many magnitudes (to_chars/from_chars must
/// round-trip all of them exactly).
inline double GenFiniteDouble(Rng& rng) {
  switch (rng.NextBounded(5)) {
    case 0:
      return static_cast<double>(rng.NextInt(-1000000, 1000000));
    case 1:
      return rng.NextDouble(-1.0, 1.0);
    case 2:
      return rng.NextDouble() * 1e18;
    case 3:
      return rng.NextDouble() * 1e-18;
    default: {
      // Fully random mantissa bits at a random scale.
      const double m = rng.NextDouble(-1.0, 1.0);
      const int exp = static_cast<int>(rng.NextInt(-200, 200));
      return std::ldexp(m, exp);
    }
  }
}

inline ml::AttributeTable GenTable(Rng& rng) {
  ml::AttributeTable table;
  const int nattrs = 1 + static_cast<int>(rng.NextBounded(5));
  std::vector<std::size_t> nominal_sizes;
  for (int a = 0; a < nattrs; ++a) {
    // Unique-ify names/values by suffixing the index: ARFF identifies
    // nominal cells by string value, so duplicates cannot round-trip.
    const std::string name =
        GenArffString(rng) + "#" + std::to_string(a);
    if (rng.NextBool(0.5)) {
      table.AddNumericAttribute(name);
      nominal_sizes.push_back(0);
    } else {
      const std::size_t nvalues = 1 + rng.NextBounded(4);
      std::vector<std::string> values;
      for (std::size_t v = 0; v < nvalues; ++v) {
        values.push_back(GenArffString(rng) + "#" + std::to_string(v));
      }
      nominal_sizes.push_back(values.size());
      table.AddNominalAttribute(name, std::move(values));
    }
  }
  const std::size_t nrows = rng.NextBounded(12);
  for (std::size_t r = 0; r < nrows; ++r) {
    std::vector<double> row;
    row.reserve(static_cast<std::size_t>(nattrs));
    for (int a = 0; a < nattrs; ++a) {
      if (nominal_sizes[static_cast<std::size_t>(a)] == 0) {
        row.push_back(GenFiniteDouble(rng));
      } else {
        row.push_back(static_cast<double>(
            rng.NextBounded(nominal_sizes[static_cast<std::size_t>(a)])));
      }
    }
    table.AddRow(std::move(row));
  }
  return table;
}

// ---------------------------------------------------------------------------
// Mutation

/// Applies 1-4 random byte-level mutations: flips, inserts, deletes,
/// chunk duplication, truncation, and number-warping (turning digits into
/// '-' or appending digits, to hit sign/overflow paths).
inline std::string MutateText(Rng& rng, std::string text) {
  const int ops = 1 + static_cast<int>(rng.NextBounded(4));
  for (int op = 0; op < ops; ++op) {
    if (text.empty()) {
      text.push_back(NastyChar(rng));
      continue;
    }
    const std::size_t pos = rng.NextBounded(text.size());
    switch (rng.NextBounded(7)) {
      case 0:  // flip a byte
        text[pos] = NastyChar(rng);
        break;
      case 1:  // insert a byte
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos),
                    NastyChar(rng));
        break;
      case 2:  // delete a byte
        text.erase(pos, 1);
        break;
      case 3: {  // duplicate a chunk
        const std::size_t len =
            std::min<std::size_t>(text.size() - pos, rng.NextBounded(16) + 1);
        text.insert(pos, text.substr(pos, len));
        break;
      }
      case 4:  // truncate
        text.resize(pos);
        break;
      case 5:  // negate a number: prefix a digit with '-'
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos), '-');
        break;
      default: {  // append digits to blow up a number
        const std::size_t len = 1 + rng.NextBounded(24);
        text.insert(pos, std::string(len, '9'));
        break;
      }
    }
  }
  return text;
}

// ---------------------------------------------------------------------------
// Equality helpers

inline bool TablesEqual(const ml::AttributeTable& a,
                        const ml::AttributeTable& b, std::string* why) {
  if (a.num_attributes() != b.num_attributes()) {
    *why = "attribute count mismatch";
    return false;
  }
  for (int i = 0; i < a.num_attributes(); ++i) {
    const ml::Attribute& aa = a.attribute(i);
    const ml::Attribute& bb = b.attribute(i);
    if (aa.name != bb.name) {
      *why = "attribute " + std::to_string(i) + " name mismatch: '" +
             aa.name + "' vs '" + bb.name + "'";
      return false;
    }
    if (aa.kind != bb.kind) {
      *why = "attribute " + std::to_string(i) + " kind mismatch";
      return false;
    }
    if (aa.values != bb.values) {
      *why = "attribute " + std::to_string(i) + " nominal domain mismatch";
      return false;
    }
  }
  if (a.num_rows() != b.num_rows()) {
    *why = "row count mismatch";
    return false;
  }
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_attributes(); ++c) {
      if (a.value(r, c) != b.value(r, c)) {
        *why = "cell (" + std::to_string(r) + ", " + std::to_string(c) +
               ") mismatch";
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Per-format fuzz rounds

/// CSV: write records to `temp_path`, read them back, require field-exact
/// identity; then write mutated bytes and require a clean read-or-reject.
inline std::optional<std::string> CsvRound(Rng& rng,
                                           const std::string& temp_path) {
  const auto records = GenCsvRecords(rng);
  {
    CsvWriter writer(temp_path);
    if (!writer.ok()) return "cannot open temp file " + temp_path;
    for (const auto& r : records) writer.WriteRecord(r);
    if (!writer.ok()) return "write failed: " + writer.error();
  }
  if (!graph::ReadTextFile(temp_path, &LastInputBytes())) {
    return "reread failed";
  }
  {
    CsvReader reader(temp_path);
    if (!reader.ok()) return "cannot reopen temp file";
    std::vector<std::string> fields;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (!reader.ReadRecord(&fields)) {
        return "record " + std::to_string(i) +
               " failed to read back: " + reader.error();
      }
      if (fields != records[i]) {
        return "record " + std::to_string(i) + " round-trip mismatch";
      }
    }
    if (reader.ReadRecord(&fields)) return "phantom extra record";
    if (!reader.ok()) return "clean EOF expected: " + reader.error();
  }
  // Mutation: the reader must consume arbitrary bytes without crashing.
  {
    std::string text;
    if (!graph::ReadTextFile(temp_path, &text)) return "reread failed";
    text = MutateText(rng, std::move(text));
    if (!graph::WriteTextFile(temp_path, text)) return "rewrite failed";
    LastInputBytes() = text;
    CsvReader reader(temp_path);
    std::vector<std::string> fields;
    std::size_t guard = text.size() + 16;
    while (reader.ReadRecord(&fields)) {
      if (--guard == 0) return "reader failed to terminate";
    }
  }
  return std::nullopt;
}


/// Every graph a reader accepts must yield a structurally consistent
/// GraphView snapshot — the mining kernels consume the view, so a parser
/// bug that survives into an inconsistent CSR layout is an I/O bug.
inline std::optional<std::string> ViewOf(const graph::LabeledGraph& g,
                                         const char* what) {
  if (!graph::GraphView(g).CheckConsistent()) {
    return std::string("inconsistent GraphView from ") + what;
  }
  return std::nullopt;
}

inline std::optional<std::string> NativeRound(Rng& rng) {
  const graph::LabeledGraph g = GenGraph(rng);
  const std::string text = graph::WriteNative(g);
  graph::LabeledGraph back;
  ParseError err;
  LastInputBytes() = text;
  if (!graph::ReadNative(text, &back, &err)) {
    return "valid native output rejected: " + err.ToString();
  }
  if (!g.StructurallyEqual(back)) return "native round-trip mismatch";
  if (graph::WriteNative(back) != text) return "native reserialization diff";
  if (auto bad = ViewOf(back, "native reader")) return bad;
  const std::string mutated = MutateText(rng, text);
  graph::LabeledGraph m;
  LastInputBytes() = mutated;
  if (graph::ReadNative(mutated, &m, &err)) {
    // Accepted mutants must still be coherent graphs.
    if (auto bad = ViewOf(m, "native mutant")) return bad;
    const std::string rewritten = graph::WriteNative(m);
    graph::LabeledGraph again;
    if (!graph::ReadNative(rewritten, &again, &err)) {
      return "accepted mutant does not reserialize: " + err.ToString();
    }
    if (!m.StructurallyEqual(again)) return "mutant reserialization drift";
  }
  return std::nullopt;
}

inline std::optional<std::string> SubdueRound(Rng& rng) {
  const graph::LabeledGraph g = GenGraph(rng);
  const std::string text = graph::WriteSubdueFormat(g);
  graph::LabeledGraph back;
  ParseError err;
  LastInputBytes() = text;
  if (!graph::ReadSubdueFormat(text, &back, &err)) {
    return "valid SUBDUE output rejected: " + err.ToString();
  }
  if (!g.StructurallyEqual(back)) return "SUBDUE round-trip mismatch";
  if (graph::WriteSubdueFormat(back) != text) {
    return "SUBDUE reserialization diff";
  }
  if (auto bad = ViewOf(back, "SUBDUE reader")) return bad;
  const std::string mutated = MutateText(rng, text);
  graph::LabeledGraph m;
  LastInputBytes() = mutated;
  if (graph::ReadSubdueFormat(mutated, &m, &err)) {  // must not crash
    if (auto bad = ViewOf(m, "SUBDUE mutant")) return bad;
  }
  return std::nullopt;
}

inline std::optional<std::string> FsgRound(Rng& rng) {
  const std::vector<graph::LabeledGraph> txns = GenTransactions(rng);
  const std::string text = graph::WriteFsgFormat(txns);
  std::vector<graph::LabeledGraph> back;
  ParseError err;
  LastInputBytes() = text;
  if (!graph::ReadFsgFormat(text, &back, &err)) {
    return "valid FSG output rejected: " + err.ToString();
  }
  if (back.size() != txns.size()) return "FSG transaction count mismatch";
  for (std::size_t i = 0; i < txns.size(); ++i) {
    if (!txns[i].StructurallyEqual(back[i])) {
      return "FSG round-trip mismatch at transaction " + std::to_string(i);
    }
  }
  if (graph::WriteFsgFormat(back) != text) return "FSG reserialization diff";
  for (const graph::LabeledGraph& t : back) {
    if (auto bad = ViewOf(t, "FSG reader")) return bad;
  }
  const std::string mutated = MutateText(rng, text);
  std::vector<graph::LabeledGraph> m;
  LastInputBytes() = mutated;
  if (graph::ReadFsgFormat(mutated, &m, &err)) {  // must not crash
    for (const graph::LabeledGraph& t : m) {
      if (auto bad = ViewOf(t, "FSG mutant")) return bad;
    }
  }
  return std::nullopt;
}

inline std::optional<std::string> ArffRound(Rng& rng) {
  const ml::AttributeTable table = GenTable(rng);
  const std::string relation = GenArffString(rng);
  const std::string text = ml::WriteArff(table, relation);
  ml::AttributeTable back;
  ParseError err;
  LastInputBytes() = text;
  if (!ml::ReadArff(text, &back, &err)) {
    return "valid ARFF output rejected: " + err.ToString() + "\n" + text;
  }
  std::string why;
  if (!TablesEqual(table, back, &why)) {
    return "ARFF round-trip mismatch: " + why + "\n" + text;
  }
  if (ml::WriteArff(back, relation) != text) return "ARFF reserialization diff";
  const std::string mutated = MutateText(rng, text);
  ml::AttributeTable m;
  LastInputBytes() = mutated;
  (void)ml::ReadArff(mutated, &m, &err);  // must not crash
  return std::nullopt;
}

inline std::optional<std::string> DateRound(Rng& rng) {
  const std::int64_t dn = rng.NextInt(-3000000, 3000000);
  const std::string text = FormatDayNumber(dn);
  std::int64_t back = 0;
  LastInputBytes() = text;
  if (!ParseDayNumber(text, &back)) {
    return "formatted date rejected: " + text;
  }
  if (back != dn) return "date round-trip mismatch: " + text;
  const std::string mutated = MutateText(rng, text);
  std::int64_t m = 0;
  LastInputBytes() = mutated;
  if (ParseDayNumber(mutated, &m)) {
    // Whatever the strict parser accepts must round-trip through the
    // canonical formatter.
    std::int64_t m2 = 0;
    const std::string canonical = FormatDayNumber(m);
    if (!ParseDayNumber(canonical, &m2) || m2 != m) {
      return "accepted mutant '" + mutated + "' does not round-trip via '" +
             canonical + "'";
    }
  }
  return std::nullopt;
}

inline std::optional<std::string> BinningRound(Rng& rng) {
  const std::size_t n = 1 + rng.NextBounded(40);
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(rng.NextBool(0.3)
                         ? static_cast<double>(rng.NextInt(-5, 5))
                         : rng.NextDouble(-100.0, 100.0));
  }
  const int bins = 1 + static_cast<int>(rng.NextBounded(8));
  const Discretizer disc = rng.NextBool()
                               ? Discretizer::EqualWidth(values, bins)
                               : Discretizer::EqualFrequency(values, bins);
  const auto& cuts = disc.cut_points();
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    if (!(cuts[i - 1] < cuts[i])) return "cut points not ascending";
  }
  if (disc.num_bins() > bins) return "more bins than requested";
  int prev_bin = -1;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double v : sorted) {
    const int b = disc.Bin(v);
    if (b < 0 || b >= disc.num_bins()) return "bin out of range";
    if (b < prev_bin) return "Bin() is not monotone";
    prev_bin = b;
    // The bin's interval must actually contain v.
    if (b > 0 && !(v > cuts[static_cast<std::size_t>(b) - 1])) {
      return "value below its bin's open lower bound";
    }
    if (b < static_cast<int>(cuts.size()) &&
        !(v <= cuts[static_cast<std::size_t>(b)])) {
      return "value above its bin's closed upper bound";
    }
    (void)disc.IntervalLabel(b);  // must not crash
  }
  // Histogram over the full value range accounts for every value once.
  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  if (*min_it < *max_it) {
    const auto buckets = Histogram(values, {*min_it, *max_it});
    std::size_t total = 0;
    for (const auto& b : buckets) total += b.count;
    if (total != values.size()) {
      return "histogram dropped " + std::to_string(values.size() - total) +
             " in-range values";
    }
  }
  return std::nullopt;
}

}  // namespace tnmine::fuzz

#endif  // TNMINE_TESTS_PROPERTY_GENERATORS_H_
