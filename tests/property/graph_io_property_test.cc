#include <gtest/gtest.h>

#include "common/random.h"
#include "generators.h"
#include "graph/graph_io.h"

namespace tnmine::graph {
namespace {

TEST(GraphIoPropertyTest, NativeSeededRounds) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    const auto failure = fuzz::NativeRound(rng);
    ASSERT_FALSE(failure.has_value()) << "seed " << seed << ": " << *failure;
  }
}

TEST(GraphIoPropertyTest, SubdueSeededRounds) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed ^ 0x5151'5151ULL);
    const auto failure = fuzz::SubdueRound(rng);
    ASSERT_FALSE(failure.has_value()) << "seed " << seed << ": " << *failure;
  }
}

TEST(GraphIoPropertyTest, FsgSeededRounds) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed ^ 0xF5F5'F5F5ULL);
    const auto failure = fuzz::FsgRound(rng);
    ASSERT_FALSE(failure.has_value()) << "seed " << seed << ": " << *failure;
  }
}

TEST(GraphIoPropertyTest, HostileHeadersNeverReserveHugeMemory) {
  // Structure-aware hostile inputs: headers promising astronomically more
  // elements than the body could contain must fail fast and cleanly.
  const char* hostile[] = {
      "g -1 0\n",
      "g 0 -1\n",
      "g 18446744073709551615 0\n",
      "g 4294967295 4294967295\n",
      "g 99999999999999999999999999 1\n",
      "g 1 0\nv 0 1\ng 1 0\n",
      "g 1 1\nv -0 1\ne 0 0 1\n",  // "-0" is rejected (sign not allowed)
  };
  for (const char* text : hostile) {
    LabeledGraph g;
    ParseError err;
    EXPECT_FALSE(ReadNative(text, &g, &err)) << text;
    EXPECT_FALSE(err.message.empty()) << text;
  }
}

TEST(GraphIoPropertyTest, EmptyGraphRoundTripsEverywhere) {
  const LabeledGraph empty;
  LabeledGraph back;
  ParseError err;
  ASSERT_TRUE(ReadNative(WriteNative(empty), &back, &err)) << err.ToString();
  EXPECT_EQ(back.num_vertices(), 0u);
  ASSERT_TRUE(ReadSubdueFormat(WriteSubdueFormat(empty), &back, &err));
  EXPECT_EQ(back.num_vertices(), 0u);
  std::vector<LabeledGraph> txns;
  ASSERT_TRUE(ReadFsgFormat(WriteFsgFormat({}), &txns, &err));
  EXPECT_TRUE(txns.empty());
}

}  // namespace
}  // namespace tnmine::graph
