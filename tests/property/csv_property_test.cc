#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/csv.h"
#include "common/random.h"
#include "generators.h"

namespace tnmine {
namespace {

class CsvPropertyTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/tnmine_csv_property.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvPropertyTest, SeededRoundsRoundTripAndNeverCrash) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    const auto failure = fuzz::CsvRound(rng, path_);
    ASSERT_FALSE(failure.has_value()) << "seed " << seed << ": " << *failure;
  }
}

TEST_F(CsvPropertyTest, EveryGeneratedFieldSurvivesEscapeParse) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::string field = fuzz::GenCsvField(rng);
    std::vector<std::string> fields;
    ASSERT_TRUE(ParseCsvLine(EscapeCsvField(field), &fields)) << i;
    ASSERT_EQ(fields.size(), 1u) << i;
    EXPECT_EQ(fields[0], field) << i;
  }
}

TEST_F(CsvPropertyTest, ParseCsvLineNeverCrashesOnMutants) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    std::string line = EscapeCsvField(fuzz::GenCsvField(rng)) + "," +
                       EscapeCsvField(fuzz::GenCsvField(rng));
    line = fuzz::MutateText(rng, std::move(line));
    std::vector<std::string> fields;
    (void)ParseCsvLine(line, &fields);  // accept or reject, never crash
  }
}

TEST_F(CsvPropertyTest, LoneEmptyFieldRoundTrips) {
  // Regression: a record of one empty field used to serialize to a blank
  // line, which the reader skips.
  {
    CsvWriter writer(path_);
    ASSERT_TRUE(writer.ok());
    writer.WriteRecord({""});
    writer.WriteRecord({"next"});
  }
  CsvReader reader(path_);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.ReadRecord(&fields));
  EXPECT_EQ(fields, std::vector<std::string>{""});
  ASSERT_TRUE(reader.ReadRecord(&fields));
  EXPECT_EQ(fields, std::vector<std::string>{"next"});
}

}  // namespace
}  // namespace tnmine
