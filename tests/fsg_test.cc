#include "fsg/fsg.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "common/random.h"
#include "graph/algorithms.h"
#include "iso/canonical.h"
#include "iso/vf2.h"

namespace tnmine::fsg {
namespace {

using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

LabeledGraph Edge1(Label a, Label b, Label e) {
  LabeledGraph g;
  const VertexId va = g.AddVertex(a);
  const VertexId vb = g.AddVertex(b);
  g.AddEdge(va, vb, e);
  return g;
}

LabeledGraph Triangle(Label v, Label e) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(v);
  const VertexId b = g.AddVertex(v);
  const VertexId c = g.AddVertex(v);
  g.AddEdge(a, b, e);
  g.AddEdge(b, c, e);
  g.AddEdge(c, a, e);
  return g;
}

TEST(FsgTest, EmptyTransactionsGiveNothing) {
  FsgOptions options;
  options.min_support = 1;
  const FsgResult r = MineFsg({}, options);
  EXPECT_TRUE(r.patterns.empty());
}

TEST(FsgTest, SingleEdgeSupportCounting) {
  std::vector<LabeledGraph> txns = {Edge1(0, 1, 5), Edge1(0, 1, 5),
                                    Edge1(0, 1, 6)};
  FsgOptions options;
  options.min_support = 2;
  const FsgResult r = MineFsg(txns, options);
  ASSERT_EQ(r.patterns.size(), 1u);
  EXPECT_EQ(r.patterns[0].support, 2u);
  EXPECT_EQ(r.patterns[0].tids.ToVector(), (std::vector<std::uint32_t>{0, 1}));
}

TEST(FsgTest, FindsPlantedTriangle) {
  std::vector<LabeledGraph> txns;
  for (int i = 0; i < 4; ++i) txns.push_back(Triangle(0, 1));
  txns.push_back(Edge1(0, 0, 1));  // noise transaction
  FsgOptions options;
  options.min_support = 4;
  const FsgResult r = MineFsg(txns, options);
  // Frequent: single edge (support 5), 2-edge path / 2-in / 2-out shapes
  // from the triangle, and the triangle itself (support 4).
  bool found_triangle = false;
  for (const auto& p : r.patterns) {
    if (p.graph.num_edges() == 3) {
      EXPECT_EQ(p.support, 4u);
      EXPECT_EQ(p.code, iso::CanonicalCode(Triangle(0, 1)));
      found_triangle = true;
    }
  }
  EXPECT_TRUE(found_triangle);
}

TEST(FsgTest, AllReportedPatternsConnected) {
  Rng rng(3);
  std::vector<LabeledGraph> txns;
  for (int t = 0; t < 10; ++t) {
    LabeledGraph g;
    for (int i = 0; i < 6; ++i) {
      g.AddVertex(static_cast<Label>(rng.NextBounded(2)));
    }
    for (int i = 0; i < 8; ++i) {
      g.AddEdge(static_cast<VertexId>(rng.NextBounded(6)),
                static_cast<VertexId>(rng.NextBounded(6)),
                static_cast<Label>(rng.NextBounded(2)));
    }
    txns.push_back(std::move(g));
  }
  FsgOptions options;
  options.min_support = 3;
  options.max_edges = 4;
  const FsgResult r = MineFsg(txns, options);
  for (const auto& p : r.patterns) {
    EXPECT_TRUE(graph::IsWeaklyConnected(p.graph)) << p.graph.DebugString();
  }
}

TEST(FsgTest, SupportsAreExact) {
  // Independent verification: every reported pattern's support must match
  // a from-scratch VF2 scan of all transactions, and no pattern may be
  // reported below min_support.
  Rng rng(7);
  std::vector<LabeledGraph> txns;
  for (int t = 0; t < 12; ++t) {
    LabeledGraph g;
    for (int i = 0; i < 5; ++i) {
      g.AddVertex(static_cast<Label>(rng.NextBounded(2)));
    }
    for (int i = 0; i < 7; ++i) {
      g.AddEdge(static_cast<VertexId>(rng.NextBounded(5)),
                static_cast<VertexId>(rng.NextBounded(5)),
                static_cast<Label>(rng.NextBounded(2)));
    }
    txns.push_back(std::move(g));
  }
  FsgOptions options;
  options.min_support = 4;
  options.max_edges = 3;
  const FsgResult r = MineFsg(txns, options);
  ASSERT_FALSE(r.patterns.empty());
  for (const auto& p : r.patterns) {
    std::vector<std::uint32_t> expect_tids;
    for (std::uint32_t tid = 0; tid < txns.size(); ++tid) {
      if (iso::ContainsSubgraph(p.graph, txns[tid])) {
        expect_tids.push_back(tid);
      }
    }
    EXPECT_EQ(p.tids.ToVector(), expect_tids) << p.graph.DebugString();
    EXPECT_EQ(p.support, expect_tids.size());
    EXPECT_GE(p.support, options.min_support);
  }
}

TEST(FsgTest, MaxEdgesBoundsPatternSize) {
  std::vector<LabeledGraph> txns = {Triangle(0, 1), Triangle(0, 1)};
  FsgOptions options;
  options.min_support = 2;
  options.max_edges = 2;
  const FsgResult r = MineFsg(txns, options);
  for (const auto& p : r.patterns) {
    EXPECT_LE(p.graph.num_edges(), 2u);
  }
  EXPECT_EQ(r.levels_completed, 2u);
}

TEST(FsgTest, ParallelEdgePatternsNeedMultiplicity) {
  // One transaction has a doubled edge, two have single edges.
  LabeledGraph doubled = Edge1(0, 1, 5);
  doubled.AddEdge(0, 1, 5);
  std::vector<LabeledGraph> txns = {doubled, Edge1(0, 1, 5), Edge1(0, 1, 5)};
  FsgOptions options;
  options.min_support = 1;
  options.max_edges = 2;
  const FsgResult r = MineFsg(txns, options);
  bool found_parallel = false;
  for (const auto& p : r.patterns) {
    if (p.graph.num_edges() == 2 && p.graph.num_vertices() == 2) {
      // The doubled-edge pattern: supported only by transaction 0.
      bool parallel_same = true;
      p.graph.ForEachEdge([&](graph::EdgeId e) {
        parallel_same = parallel_same && p.graph.edge(e).src == 0 &&
                        p.graph.edge(e).dst == 1 &&
                        p.graph.edge(e).label == 5;
      });
      if (parallel_same) {
        found_parallel = true;
        EXPECT_EQ(p.support, 1u);
        EXPECT_EQ(p.tids.ToVector(), (std::vector<std::uint32_t>{0}));
      }
    }
  }
  EXPECT_TRUE(found_parallel);
}

TEST(FsgTest, MemoryBudgetAborts) {
  Rng rng(11);
  std::vector<LabeledGraph> txns;
  for (int t = 0; t < 8; ++t) {
    LabeledGraph g;
    for (int i = 0; i < 8; ++i) {
      g.AddVertex(static_cast<Label>(rng.NextBounded(4)));
    }
    for (int i = 0; i < 14; ++i) {
      g.AddEdge(static_cast<VertexId>(rng.NextBounded(8)),
                static_cast<VertexId>(rng.NextBounded(8)),
                static_cast<Label>(rng.NextBounded(4)));
    }
    txns.push_back(std::move(g));
  }
  FsgOptions options;
  options.min_support = 2;
  options.max_candidate_bytes = 512;  // absurdly small: must trip
  const FsgResult r = MineFsg(txns, options);
  EXPECT_TRUE(r.aborted_out_of_memory);
  // Level-1 patterns are still reported (the abort happens at candidate
  // generation, as FSG's real OOM did).
  EXPECT_FALSE(r.patterns.empty());
  EXPECT_GT(r.peak_candidate_bytes, 512u);
}

TEST(FsgTest, LevelDiagnosticsConsistent) {
  std::vector<LabeledGraph> txns = {Triangle(0, 1), Triangle(0, 1),
                                    Triangle(0, 2)};
  FsgOptions options;
  options.min_support = 2;
  const FsgResult r = MineFsg(txns, options);
  ASSERT_EQ(r.candidates_per_level.size(), r.frequent_per_level.size());
  std::size_t total = 0;
  for (std::size_t f : r.frequent_per_level) total += f;
  EXPECT_EQ(total, r.patterns.size());
  for (std::size_t i = 0; i < r.frequent_per_level.size(); ++i) {
    EXPECT_LE(r.frequent_per_level[i], r.candidates_per_level[i]);
  }
}

TEST(FsgTest, SelfLoopPatterns) {
  LabeledGraph loop;
  const VertexId a = loop.AddVertex(3);
  loop.AddEdge(a, a, 9);
  std::vector<LabeledGraph> txns = {loop, loop, Edge1(3, 3, 9)};
  FsgOptions options;
  options.min_support = 2;
  const FsgResult r = MineFsg(txns, options);
  ASSERT_EQ(r.patterns.size(), 1u);
  EXPECT_EQ(r.patterns[0].support, 2u);
  EXPECT_EQ(r.patterns[0].graph.num_vertices(), 1u);
}

}  // namespace
}  // namespace tnmine::fsg
