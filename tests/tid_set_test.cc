#include "pattern/tid_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bitwords.h"

namespace tnmine::pattern {
namespace {

using Encoding = TidSet::Encoding;
using EncodingPolicy = TidSet::EncodingPolicy;

/// splitmix64: deterministic across platforms and standard libraries, so
/// the sampled sets (and any failure) reproduce everywhere.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Sorted unique sample of [0, universe) where each element is kept with
/// probability density_pct/100.
std::vector<std::uint32_t> SampleTids(std::uint32_t universe,
                                      std::uint32_t density_pct,
                                      std::uint64_t seed) {
  std::vector<std::uint32_t> out;
  const std::uint64_t threshold =
      (~0ULL / 100) * density_pct;  // keep when hash < threshold
  for (std::uint32_t tid = 0; tid < universe; ++tid) {
    if (Mix64(seed ^ tid) < threshold) out.push_back(tid);
  }
  return out;
}

std::vector<std::uint32_t> ReferenceIntersect(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<std::uint32_t> ReferenceUnion(const std::vector<std::uint32_t>& a,
                                          const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

TidSet Make(const std::vector<std::uint32_t>& tids, std::uint32_t universe,
            Encoding enc) {
  TidSet s = TidSet::FromSorted(tids, universe);
  s.ConvertTo(enc);
  return s;
}

TEST(TidSetTest, EmptyDefaults) {
  const TidSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Cardinality(), 0u);
  EXPECT_EQ(s.universe(), 0u);
  EXPECT_EQ(s.ToVector(), std::vector<std::uint32_t>{});
  EXPECT_EQ(s.begin(), s.end());
}

TEST(TidSetTest, FromSortedRoundTripsBothEncodings) {
  const std::vector<std::uint32_t> tids = SampleTids(500, 10, 1);
  for (const Encoding enc : {Encoding::kSparse, Encoding::kBitmap}) {
    const TidSet s = Make(tids, 500, enc);
    EXPECT_EQ(s.encoding(), enc);
    EXPECT_EQ(s.ToVector(), tids);
    EXPECT_EQ(s.Cardinality(), tids.size());
    for (std::uint32_t tid = 0; tid < 500; ++tid) {
      EXPECT_EQ(s.Contains(tid),
                std::binary_search(tids.begin(), tids.end(), tid));
    }
  }
}

TEST(TidSetTest, FromSortedRaisesUniverseToData) {
  const TidSet s = TidSet::FromSorted({3, 90}, /*universe=*/10);
  EXPECT_GE(s.universe(), 91u);
  EXPECT_TRUE(s.Contains(90));
}

TEST(TidSetTest, AppendMatchesFromSorted) {
  const std::vector<std::uint32_t> tids = SampleTids(300, 25, 2);
  for (const Encoding enc : {Encoding::kSparse, Encoding::kBitmap}) {
    TidSet streamed;
    streamed.ConvertTo(enc);
    for (const std::uint32_t tid : tids) streamed.Append(tid);
    streamed.Normalize();
    EXPECT_EQ(streamed, TidSet::FromSorted(tids, 300));
    EXPECT_EQ(streamed.ToVector(), tids);
  }
}

TEST(TidSetTest, IteratorWalksAscendingInBothEncodings) {
  const std::vector<std::uint32_t> tids = SampleTids(257, 50, 3);
  for (const Encoding enc : {Encoding::kSparse, Encoding::kBitmap}) {
    const TidSet s = Make(tids, 257, enc);
    std::vector<std::uint32_t> via_iter;
    for (const std::uint32_t tid : s) via_iter.push_back(tid);
    std::vector<std::uint32_t> via_foreach;
    s.ForEach([&](std::uint32_t tid) { via_foreach.push_back(tid); });
    EXPECT_EQ(via_iter, tids);
    EXPECT_EQ(via_foreach, tids);
  }
}

TEST(TidSetTest, EqualityIsEncodingIndependent) {
  const std::vector<std::uint32_t> tids = SampleTids(400, 5, 4);
  ASSERT_GE(tids.size(), 2u);
  const TidSet sparse = Make(tids, 400, Encoding::kSparse);
  const TidSet bitmap = Make(tids, 400, Encoding::kBitmap);
  EXPECT_EQ(sparse, bitmap);
  TidSet different = bitmap;
  different.IntersectWith(Make({tids.front()}, 400, Encoding::kSparse));
  EXPECT_FALSE(sparse == different);
}

// The core property: every encoding combination intersects to the exact
// reference result, across a sweep of seeds and densities (including the
// 1/32 density boundary where Normalize() flips encodings).
TEST(TidSetTest, IntersectionMatchesReferenceAcrossEncodings) {
  const std::uint32_t universe = 1024;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    for (const std::uint32_t da : {1u, 3u, 30u}) {
      for (const std::uint32_t db : {2u, 4u, 60u}) {
        const auto va = SampleTids(universe, da, seed * 2 + 10);
        const auto vb = SampleTids(universe, db, seed * 2 + 11);
        const auto expect = ReferenceIntersect(va, vb);
        for (const Encoding ea : {Encoding::kSparse, Encoding::kBitmap}) {
          for (const Encoding eb : {Encoding::kSparse, Encoding::kBitmap}) {
            TidSet a = Make(va, universe, ea);
            const TidSet b = Make(vb, universe, eb);
            a.IntersectWith(b);
            EXPECT_EQ(a.ToVector(), expect)
                << "seed=" << seed << " da=" << da << " db=" << db;
            EXPECT_EQ(a.Cardinality(), expect.size());
            // The static variant must agree with the in-place one.
            EXPECT_EQ(TidSet::Intersect(Make(va, universe, ea), b).ToVector(),
                      expect);
          }
        }
      }
    }
  }
}

TEST(TidSetTest, UnionMatchesReferenceAcrossEncodings) {
  const std::uint32_t universe = 777;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto va = SampleTids(universe, 4, seed + 20);
    const auto vb = SampleTids(universe, 40, seed + 90);
    const auto expect = ReferenceUnion(va, vb);
    for (const Encoding ea : {Encoding::kSparse, Encoding::kBitmap}) {
      for (const Encoding eb : {Encoding::kSparse, Encoding::kBitmap}) {
        TidSet a = Make(va, universe, ea);
        a.UnionWith(Make(vb, universe, eb));
        EXPECT_EQ(a.ToVector(), expect) << "seed=" << seed;
        EXPECT_EQ(a.Cardinality(), expect.size());
      }
    }
  }
}

/// Reference for SpliceUnion: shift `b` by `offset`, union into `a`.
std::vector<std::uint32_t> ReferenceSplice(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b,
    std::uint32_t offset) {
  std::vector<std::uint32_t> shifted;
  shifted.reserve(b.size());
  for (const std::uint32_t tid : b) shifted.push_back(tid + offset);
  return ReferenceUnion(a, shifted);
}

// The per-shard merge kernel (DESIGN.md §16): splicing a shard-local set
// at its global base must equal the shifted reference union for every
// encoding pair, whether the spliced range appends past the accumulator
// (the ascending-shard fast path) or overlaps it (the merge path).
TEST(TidSetTest, SpliceUnionMatchesReferenceAcrossEncodings) {
  const std::uint32_t universe = 512;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    for (const std::uint32_t da : {2u, 35u}) {
      for (const std::uint32_t db : {3u, 40u}) {
        const auto va = SampleTids(universe, da, seed * 2 + 40);
        const auto vb = SampleTids(universe, db, seed * 2 + 41);
        // offset == universe exercises the pure append; universe / 2 an
        // overlapping splice; 0 a plain union through the splice path.
        for (const std::uint32_t offset : {universe, universe / 2, 0u}) {
          const auto expect = ReferenceSplice(va, vb, offset);
          for (const Encoding ea : {Encoding::kSparse, Encoding::kBitmap}) {
            for (const Encoding eb :
                 {Encoding::kSparse, Encoding::kBitmap}) {
              TidSet a = Make(va, universe, ea);
              a.SpliceUnion(Make(vb, universe, eb), offset);
              EXPECT_EQ(a.ToVector(), expect)
                  << "seed=" << seed << " da=" << da << " db=" << db
                  << " offset=" << offset << " ea=" << int(ea)
                  << " eb=" << int(eb);
              EXPECT_EQ(a.Cardinality(), expect.size());
              EXPECT_GE(a.universe(), offset + universe);
            }
          }
        }
      }
    }
  }
}

// Aggregating shards in ascending base order — exactly what the miners'
// level-1 support counting does — must equal one flat set over the
// global tid space, for any cut of the universe into shards.
TEST(TidSetTest, SpliceUnionReassemblesShardedSets) {
  const std::uint32_t universe = 900;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto global = SampleTids(universe, 20, seed + 60);
    for (const std::uint32_t shard_size : {1u, 64u, 299u, 900u}) {
      for (const Encoding enc : {Encoding::kSparse, Encoding::kBitmap}) {
        TidSet acc;
        acc.ConvertTo(enc);
        for (std::uint32_t base = 0; base < universe; base += shard_size) {
          const std::uint32_t end = std::min(universe, base + shard_size);
          // The shard-local set: global tids in [base, end), rebased.
          std::vector<std::uint32_t> local;
          for (const std::uint32_t tid : global) {
            if (tid >= base && tid < end) local.push_back(tid - base);
          }
          acc.SpliceUnion(TidSet::FromSorted(local, end - base), base);
        }
        EXPECT_EQ(acc.ToVector(), global)
            << "seed=" << seed << " shard_size=" << shard_size
            << " enc=" << int(enc);
        EXPECT_EQ(acc, TidSet::FromSorted(global, universe));
      }
    }
  }
}

TEST(TidSetTest, SpliceUnionEmptyShardStillRaisesUniverse) {
  for (const Encoding enc : {Encoding::kSparse, Encoding::kBitmap}) {
    TidSet acc = Make({1, 5}, 8, enc);
    // An empty shard contributes no tids but must still advance the
    // universe so later Contains/bitmap sizing covers its tid range.
    acc.SpliceUnion(TidSet::FromSorted({}, 16), 8);
    EXPECT_GE(acc.universe(), 24u);
    EXPECT_EQ(acc.ToVector(), (std::vector<std::uint32_t>{1, 5}));
    acc.SpliceUnion(Make({0, 7}, 8, enc), 16);
    EXPECT_EQ(acc.ToVector(), (std::vector<std::uint32_t>{1, 5, 16, 23}));
  }
}

TEST(TidSetTest, SpliceUnionAppendCrossesDensityBoundary) {
  const TidSet::ScopedEncodingPolicy auto_policy(EncodingPolicy::kAuto);
  // A sparse accumulator that a dense spliced shard pushes over the 1/32
  // density boundary: the post-splice Normalize must re-encode without
  // losing elements.
  TidSet acc = TidSet::FromSorted(SampleTids(4096, 1, 70), 4096);
  ASSERT_EQ(acc.encoding(), Encoding::kSparse);
  const auto dense = SampleTids(256, 90, 71);
  const auto expect =
      ReferenceSplice(acc.ToVector(), dense, /*offset=*/4096);
  TidSet shard = TidSet::FromSorted(dense, 256);
  acc.SpliceUnion(shard, 4096);
  EXPECT_EQ(acc.ToVector(), expect);
  // And the reverse direction: a bitmap accumulator spliced with a tiny
  // tail shard stays correct when Normalize flips it back to sparse.
  TidSet bitmap_acc = Make(SampleTids(128, 60, 72), 128, Encoding::kBitmap);
  const auto tail = SampleTids(16, 10, 73);
  const auto expect2 = ReferenceSplice(bitmap_acc.ToVector(), tail, 4096);
  bitmap_acc.SpliceUnion(TidSet::FromSorted(tail, 16), 4096);
  EXPECT_EQ(bitmap_acc.ToVector(), expect2);
}

TEST(TidSetTest, IntersectWithEmptyAndDisjoint) {
  const auto tids = SampleTids(200, 30, 5);
  for (const Encoding enc : {Encoding::kSparse, Encoding::kBitmap}) {
    TidSet a = Make(tids, 200, enc);
    a.IntersectWith(TidSet());
    EXPECT_TRUE(a.Empty());
    TidSet b = Make({0, 2, 4}, 10, enc);
    b.IntersectWith(Make({1, 3, 5}, 10, enc));
    EXPECT_TRUE(b.Empty());
    EXPECT_EQ(b.ToVector(), std::vector<std::uint32_t>{});
  }
}

TEST(TidSetTest, NormalizePicksEncodingAtDensityBoundary) {
  const TidSet::ScopedEncodingPolicy auto_policy(EncodingPolicy::kAuto);
  const std::uint32_t universe = 3200;
  // cardinality * 32 == universe: the bitmap side of the boundary.
  std::vector<std::uint32_t> dense_enough(universe / 32);
  for (std::uint32_t i = 0; i < dense_enough.size(); ++i) {
    dense_enough[i] = i * 7;
  }
  EXPECT_EQ(TidSet::FromSorted(dense_enough, universe).encoding(),
            Encoding::kBitmap);
  // One element fewer flips back to sparse.
  std::vector<std::uint32_t> just_sparse = dense_enough;
  just_sparse.pop_back();
  EXPECT_EQ(TidSet::FromSorted(just_sparse, universe).encoding(),
            Encoding::kSparse);
}

TEST(TidSetTest, ForcedPolicyOverridesDensity) {
  const auto tids = SampleTids(256, 50, 6);  // dense: auto would bitmap
  {
    const TidSet::ScopedEncodingPolicy force(EncodingPolicy::kForceSparse);
    EXPECT_EQ(TidSet::FromSorted(tids, 256).encoding(), Encoding::kSparse);
  }
  {
    const TidSet::ScopedEncodingPolicy force(EncodingPolicy::kForceBitmap);
    const auto sparse = SampleTids(4096, 1, 7);  // sparse: auto would array
    EXPECT_EQ(TidSet::FromSorted(sparse, 4096).encoding(), Encoding::kBitmap);
  }
  // Scoped overrides restore the previous policy on destruction.
  EXPECT_EQ(TidSet::GetEncodingPolicy(), EncodingPolicy::kAuto);
}

TEST(TidSetTest, ConvertToRoundTripsAtTheBoundary) {
  const std::uint32_t universe = 640;
  // Exactly universe/32 elements: conversion in both directions must
  // preserve the elements bit-for-bit.
  std::vector<std::uint32_t> tids(universe / 32);
  for (std::uint32_t i = 0; i < tids.size(); ++i) tids[i] = i * 31;
  TidSet s = TidSet::FromSorted(tids, universe);
  s.ConvertTo(Encoding::kBitmap);
  EXPECT_EQ(s.ToVector(), tids);
  s.ConvertTo(Encoding::kSparse);
  EXPECT_EQ(s.ToVector(), tids);
  EXPECT_EQ(s.Cardinality(), tids.size());
}

TEST(TidSetTest, MemoryBytesTracksEncoding) {
  const std::uint32_t universe = 64 * 1024;
  const auto tids = SampleTids(universe, 1, 8);
  TidSet s = TidSet::FromSorted(tids, universe);
  s.ConvertTo(Encoding::kSparse);
  const std::uint64_t sparse_bytes = s.MemoryBytes();
  EXPECT_GE(sparse_bytes, sizeof(TidSet) + 4 * s.Cardinality());
  s.ConvertTo(Encoding::kBitmap);
  // The bitmap spends a word per 64 tids of universe, far more than the
  // 1%-dense array; MemoryBytes must reflect the switch.
  EXPECT_GE(s.MemoryBytes(), sizeof(TidSet) + universe / 8);
  EXPECT_GT(s.MemoryBytes(), sparse_bytes);
}

TEST(TidSetTest, ClearResetsEverything) {
  TidSet s = Make(SampleTids(100, 50, 9), 100, Encoding::kBitmap);
  s.Clear();
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.universe(), 0u);
  EXPECT_EQ(s.ToVector(), std::vector<std::uint32_t>{});
}

// --- ScratchBitset: the word-level machinery under both TidSet bitmaps
// and the VF2 candidate domains.

TEST(ScratchBitsetTest, SetTestClearWords) {
  common::ScratchBitset bits;
  bits.EnsureBits(200);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(199);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(199));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_FALSE(bits.Test(128));
  bits.Clear(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_TRUE(bits.Test(0));
  EXPECT_EQ(bits.word(0), 1ULL);  // only bit 0 left in word 0
}

TEST(ScratchBitsetTest, ClearTouchedOnlyZeroesTouchedRange) {
  common::ScratchBitset bits;
  bits.EnsureBits(512);
  bits.Set(70);
  bits.Set(130);
  EXPECT_EQ(bits.touched_begin(), 1u);  // word of bit 70
  EXPECT_EQ(bits.touched_end(), 3u);    // one past word of bit 130
  bits.ClearTouched();
  EXPECT_FALSE(bits.Test(70));
  EXPECT_FALSE(bits.Test(130));
  // The touched range resets, so new writes re-track it.
  bits.Set(400);
  EXPECT_EQ(bits.touched_begin(), 6u);
  EXPECT_EQ(bits.touched_end(), 7u);
}

TEST(ScratchBitsetTest, EnsureBitsGrowsZeroed) {
  common::ScratchBitset bits;
  bits.EnsureBits(64);
  bits.Set(10);
  bits.ClearAll();
  bits.EnsureBits(1024);  // grow after use: the new words must be zero
  for (std::uint32_t b = 0; b < 1024; b += 64) {
    EXPECT_FALSE(bits.Test(b));
  }
  EXPECT_GE(bits.MemoryBytes(), 1024 / 8);
}

}  // namespace
}  // namespace tnmine::pattern
