// Deterministic fault-injection tests: arming a failpoint produces the
// configured failure exactly once, miners absorb injected allocation
// failures into honest MiningOutcome labels, injected worker exceptions
// propagate, and io-kind sites push callers down their error paths.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/csv.h"
#include "common/random.h"
#include "fsg/fsg.h"
#include "graph/graph_io.h"
#include "graph/labeled_graph.h"
#include "gspan/gspan.h"

namespace tnmine::failpoint {
namespace {

using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

/// Disarms on scope exit so a failing assertion can't leak an armed site
/// into the next test.
struct DisarmGuard {
  ~DisarmGuard() { DisarmAll(); }
};

std::vector<LabeledGraph> RandomTransactions(std::uint64_t seed,
                                             std::size_t count) {
  Rng rng(seed);
  std::vector<LabeledGraph> txns;
  for (std::size_t t = 0; t < count; ++t) {
    LabeledGraph g;
    for (std::size_t i = 0; i < 6; ++i) {
      g.AddVertex(static_cast<Label>(rng.NextBounded(2)));
    }
    for (std::size_t i = 0; i < 10; ++i) {
      g.AddEdge(static_cast<VertexId>(rng.NextBounded(6)),
                static_cast<VertexId>(rng.NextBounded(6)),
                static_cast<Label>(rng.NextBounded(2)));
    }
    txns.push_back(std::move(g));
  }
  return txns;
}

TEST(FailpointTest, UnarmedSiteIsFalse) {
  DisarmGuard guard;
  EXPECT_FALSE(TNMINE_FAILPOINT("failpoint_test/nowhere"));
}

TEST(FailpointTest, IoKindFiresExactlyOnce) {
  DisarmGuard guard;
  ASSERT_TRUE(Arm("failpoint_test/io", Kind::kIoError, /*fire_at_hit=*/2));
  EXPECT_FALSE(TNMINE_FAILPOINT("failpoint_test/io"));  // hit 1
  EXPECT_TRUE(TNMINE_FAILPOINT("failpoint_test/io"));   // hit 2: fires
  EXPECT_FALSE(TNMINE_FAILPOINT("failpoint_test/io"));  // one-shot
  EXPECT_EQ(InjectionCount(), 1u);
  EXPECT_EQ(LastInjectedSite(), "failpoint_test/io");
}

TEST(FailpointTest, AllocKindThrowsBadAlloc) {
  DisarmGuard guard;
  ASSERT_TRUE(Arm("failpoint_test/alloc", Kind::kBadAlloc));
  EXPECT_THROW((void)TNMINE_FAILPOINT("failpoint_test/alloc"),
               std::bad_alloc);
}

TEST(FailpointTest, ThrowKindThrowsInjectedFaultWithSite) {
  DisarmGuard guard;
  ASSERT_TRUE(Arm("failpoint_test/throw", Kind::kThrow));
  try {
    (void)TNMINE_FAILPOINT("failpoint_test/throw");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "failpoint_test/throw");
  }
}

TEST(FailpointTest, ArmFromSpecParsesKindAndHit) {
  DisarmGuard guard;
  ASSERT_TRUE(ArmFromSpec("failpoint_test/spec:io:3"));
  EXPECT_FALSE(TNMINE_FAILPOINT("failpoint_test/spec"));
  EXPECT_FALSE(TNMINE_FAILPOINT("failpoint_test/spec"));
  EXPECT_TRUE(TNMINE_FAILPOINT("failpoint_test/spec"));
  EXPECT_FALSE(ArmFromSpec("no-colon"));
  EXPECT_FALSE(ArmFromSpec("site:bogus-kind"));
  EXPECT_FALSE(ArmFromSpec("site:io:not-a-number"));
}

TEST(FailpointTest, RecordingDiscoversMinerSites) {
  DisarmGuard guard;
  StartRecording();
  const auto txns = RandomTransactions(7, 8);
  gspan::GspanOptions gopts;
  gopts.min_support = 2;
  gopts.max_edges = 3;
  (void)gspan::MineGspan(txns, gopts);
  fsg::FsgOptions fopts;
  fopts.min_support = 2;
  fopts.max_edges = 3;
  (void)fsg::MineFsg(txns, fopts);
  const std::vector<std::string> sites = SitesSeen();
  auto contains = [&](const char* s) {
    return std::find(sites.begin(), sites.end(), s) != sites.end();
  };
  EXPECT_TRUE(contains("gspan/grow"));
  EXPECT_TRUE(contains("fsg/consider"));
  EXPECT_TRUE(contains("fsg/count"));
  EXPECT_GT(HitCount("gspan/grow"), 0u);
}

TEST(FailpointTest, GspanAbsorbsInjectedBadAllocAsMemoryOutcome) {
  DisarmGuard guard;
  const auto txns = RandomTransactions(11, 12);
  ASSERT_TRUE(Arm("gspan/grow", Kind::kBadAlloc, /*fire_at_hit=*/3));
  gspan::GspanOptions options;
  options.min_support = 2;
  options.max_edges = 4;
  const gspan::GspanResult result = gspan::MineGspan(txns, options);
  EXPECT_EQ(result.outcome, common::MiningOutcome::kMemoryBudgetExceeded);
  EXPECT_FALSE(result.patterns.empty());  // other seeds still mined
  EXPECT_EQ(InjectionCount(), 1u);
}

TEST(FailpointTest, FsgAbsorbsInjectedBadAllocAsMemoryOutcome) {
  DisarmGuard guard;
  const auto txns = RandomTransactions(13, 12);
  ASSERT_TRUE(Arm("fsg/count", Kind::kBadAlloc, /*fire_at_hit=*/2));
  fsg::FsgOptions options;
  options.min_support = 2;
  options.max_edges = 4;
  const fsg::FsgResult result = fsg::MineFsg(txns, options);
  EXPECT_EQ(result.outcome, common::MiningOutcome::kMemoryBudgetExceeded);
}

TEST(FailpointTest, InjectedWorkerExceptionPropagates) {
  DisarmGuard guard;
  const auto txns = RandomTransactions(17, 12);
  ASSERT_TRUE(Arm("gspan/grow", Kind::kThrow, /*fire_at_hit=*/2));
  gspan::GspanOptions options;
  options.min_support = 2;
  options.max_edges = 4;
  EXPECT_THROW((void)gspan::MineGspan(txns, options), InjectedFault);
}

TEST(FailpointTest, CsvReaderTakesErrorPathOnInjectedOpenFailure) {
  DisarmGuard guard;
  const std::string path =
      testing::TempDir() + "/failpoint_csv_test.csv";
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteRecord({"a", "b"});
  }
  ASSERT_TRUE(Arm("csv/open_read", Kind::kIoError));
  {
    CsvReader reader(path);
    EXPECT_FALSE(reader.ok());  // injected: the file exists and is valid
  }
  {
    CsvReader reader(path);  // one-shot: next open succeeds
    EXPECT_TRUE(reader.ok());
  }
  std::remove(path.c_str());
}

TEST(FailpointTest, GraphIoTakesErrorPathOnInjectedFailure) {
  DisarmGuard guard;
  const std::string path =
      testing::TempDir() + "/failpoint_graph_io_test.txt";
  ASSERT_TRUE(graph::WriteTextFile(path, "payload"));
  ASSERT_TRUE(Arm("graph_io/read", Kind::kIoError));
  std::string text;
  EXPECT_FALSE(graph::ReadTextFile(path, &text));
  EXPECT_TRUE(graph::ReadTextFile(path, &text));
  EXPECT_EQ(text, "payload");
  ASSERT_TRUE(Arm("graph_io/write", Kind::kIoError));
  EXPECT_FALSE(graph::WriteTextFile(path, "payload2"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tnmine::failpoint
