// End-to-end tnmined server tests (DESIGN.md §14): an in-process Server
// on a real socket, driven through BlockingClient over the
// length-prefixed JSON wire protocol. Pins the contracts the CI
// server-smoke job asserts from the outside: cache hits are
// byte-identical to fresh responses, any param delta or snapshot reload
// misses, a client disconnect mid-flight cancels the mining run without
// taking the server down, admission control rejects with "overloaded",
// and truncated (non-complete) results are never cached.

#include "server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "data/generator.h"
#include "server/json.h"
#include "server/wire.h"

namespace tnmine::server {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_path_ = new std::string(::testing::TempDir() +
                                 "/server_test_data.csv");
    data::GeneratorConfig config = data::GeneratorConfig::SmallScale();
    config.seed = 7;
    std::string error;
    ASSERT_TRUE(data::GenerateTransportData(config).SaveCsv(*data_path_,
                                                            &error))
        << error;
  }

  ServerOptions BaseOptions() const {
    ServerOptions options;
    options.listen = "tcp:127.0.0.1:0";
    options.snapshot_path = *data_path_;
    return options;
  }

  /// Starts a server or fails the test.
  std::unique_ptr<Server> StartServer(ServerOptions options) {
    auto server = std::make_unique<Server>(std::move(options));
    std::string error;
    EXPECT_TRUE(server->Start(&error)) << error;
    return server;
  }

  static JsonValue Request(const std::string& op,
                           JsonValue::Object params = {}) {
    JsonValue request = JsonValue::MakeObject();
    request.Set("op", op);
    if (!params.empty()) request.Set("params", JsonValue(std::move(params)));
    return request;
  }

  /// One connect + call round trip; fails the test on transport errors.
  static JsonValue Call(const Server& server, const JsonValue& request) {
    BlockingClient client;
    std::string error;
    EXPECT_TRUE(client.Connect(server.address(), &error)) << error;
    JsonValue response;
    EXPECT_TRUE(client.Call(request, &response, &error)) << error;
    return response;
  }

  static const std::string* data_path_;
};

const std::string* ServerTest::data_path_ = nullptr;

TEST_F(ServerTest, PingStatsAndUnknownOp) {
  const auto server = StartServer(BaseOptions());
  BlockingClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(server->address(), &error)) << error;

  JsonValue response;
  ASSERT_TRUE(client.Call(Request("ping"), &response, &error));
  EXPECT_TRUE(response.Get("ok").AsBool());
  EXPECT_TRUE(response.Get("result").Get("pong").AsBool());

  // Several requests pipeline over the one connection.
  ASSERT_TRUE(client.Call(Request("stats"), &response, &error));
  EXPECT_TRUE(response.Get("ok").AsBool());
  const JsonValue& result = response.Get("result");
  EXPECT_GE(result.Get("server").Get("requests_total").AsInt(), 2);
  EXPECT_EQ(result.Get("snapshot").Get("version").AsInt(), 1);
  EXPECT_EQ(result.Get("report").Get("binary").AsString(), "tnmined");

  ASSERT_TRUE(client.Call(Request("no_such_op"), &response, &error));
  EXPECT_FALSE(response.Get("ok").AsBool());
  EXPECT_EQ(response.Get("code").AsString(), "bad_request");
}

TEST_F(ServerTest, CachedResponseIsByteIdenticalToFresh) {
  const auto server = StartServer(BaseOptions());
  const JsonValue request = Request(
      "structural", {{"support", JsonValue(10)}, {"top", JsonValue(3)}});

  JsonValue fresh = Call(*server, request);
  ASSERT_TRUE(fresh.Get("ok").AsBool());
  EXPECT_FALSE(fresh.Get("cached").AsBool(true));
  EXPECT_EQ(fresh.Get("result").Get("outcome").AsString(), "complete");

  JsonValue hit = Call(*server, request);
  ASSERT_TRUE(hit.Get("ok").AsBool());
  EXPECT_TRUE(hit.Get("cached").AsBool());

  // The mined payload must be byte-identical — and so must the whole
  // response besides the cached flag itself.
  EXPECT_EQ(fresh.Get("result").Serialize(), hit.Get("result").Serialize());
  fresh.object().erase("cached");
  hit.object().erase("cached");
  EXPECT_EQ(fresh.Serialize(), hit.Serialize());

  EXPECT_EQ(server->cache().hits(), 1u);
  EXPECT_EQ(server->cache().misses(), 1u);
}

TEST_F(ServerTest, ExplicitDefaultsShareTheCacheKey) {
  const auto server = StartServer(BaseOptions());
  // "support": 10 is the schema default: spelling it explicitly must
  // canonicalize onto the same key as omitting it.
  const JsonValue first = Call(
      *server, Request("structural", {{"support", JsonValue(10)}}));
  ASSERT_TRUE(first.Get("ok").AsBool());
  const JsonValue second = Call(*server, Request("structural"));
  ASSERT_TRUE(second.Get("ok").AsBool());
  EXPECT_TRUE(second.Get("cached").AsBool());
}

TEST_F(ServerTest, AnyParamDeltaMisses) {
  const auto server = StartServer(BaseOptions());
  ASSERT_TRUE(
      Call(*server, Request("structural")).Get("ok").AsBool());
  const JsonValue delta = Call(
      *server, Request("structural", {{"support", JsonValue(11)}}));
  ASSERT_TRUE(delta.Get("ok").AsBool());
  EXPECT_FALSE(delta.Get("cached").AsBool(true));
  EXPECT_EQ(server->cache().misses(), 2u);
}

TEST_F(ServerTest, SnapshotReloadInvalidatesCache) {
  const auto server = StartServer(BaseOptions());
  ASSERT_TRUE(
      Call(*server, Request("structural")).Get("ok").AsBool());
  EXPECT_EQ(server->cache().entries(), 1u);

  // Reload over the wire (same file, so only the version changes).
  const JsonValue reload = Call(
      *server,
      Request("load_snapshot", {{"path", JsonValue(*data_path_)}}));
  ASSERT_TRUE(reload.Get("ok").AsBool());
  EXPECT_EQ(reload.Get("result").Get("version").AsInt(), 2);
  EXPECT_EQ(server->cache().entries(), 0u);

  const JsonValue after = Call(*server, Request("structural"));
  ASSERT_TRUE(after.Get("ok").AsBool());
  EXPECT_FALSE(after.Get("cached").AsBool(true));
  EXPECT_EQ(after.Get("snapshot_version").AsInt(), 2);
}

TEST_F(ServerTest, DisconnectMidFlightCancelsMining) {
  const auto server = StartServer(BaseOptions());

  // A mining request heavy enough to still be running when the client
  // vanishes (low support + deep patterns on the gspan miner).
  JsonValue heavy = Request("structural", {{"miner", JsonValue("gspan")},
                                           {"support", JsonValue(2)},
                                           {"max_edges", JsonValue(6)},
                                           {"reps", JsonValue(8)}});
  {
    BlockingClient client;
    std::string error;
    ASSERT_TRUE(client.Connect(server->address(), &error)) << error;
    ASSERT_TRUE(client.Send(heavy));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }  // ~BlockingClient closes the socket mid-mining.

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server->requests_cancelled() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server->requests_cancelled(), 1u);

  // The server must keep serving after the cancelled request.
  EXPECT_TRUE(Call(*server, Request("ping")).Get("ok").AsBool());
}

TEST_F(ServerTest, OverloadedRejectionWhenNoCapacity) {
  ServerOptions options = BaseOptions();
  options.max_inflight = 0;  // every mining request must be rejected
  const auto server = StartServer(std::move(options));
  const JsonValue response = Call(*server, Request("structural"));
  EXPECT_FALSE(response.Get("ok").AsBool());
  EXPECT_EQ(response.Get("code").AsString(), "overloaded");
  EXPECT_EQ(server->admission_rejected(), 1u);
  // Non-mining ops bypass admission control.
  EXPECT_TRUE(Call(*server, Request("stats")).Get("ok").AsBool());
}

TEST_F(ServerTest, TruncatedResultsAreNotCached) {
  const auto server = StartServer(BaseOptions());
  const JsonValue request = Request(
      "structural",
      {{"support", JsonValue(2)}, {"max_work_ticks", JsonValue(50)}});
  const JsonValue first = Call(*server, request);
  ASSERT_TRUE(first.Get("ok").AsBool());
  EXPECT_EQ(first.Get("result").Get("outcome").AsString(),
            "deadline_exceeded");
  EXPECT_EQ(server->cache().entries(), 0u);
  const JsonValue second = Call(*server, request);
  ASSERT_TRUE(second.Get("ok").AsBool());
  EXPECT_FALSE(second.Get("cached").AsBool(true));
}

TEST_F(ServerTest, LruEvictionUnderSmallServerCache) {
  // Probe the entry footprint once, then rebuild the server with a cache
  // that holds one entry but not two.
  std::uint64_t one_entry_bytes = 0;
  {
    const auto probe = StartServer(BaseOptions());
    ASSERT_TRUE(Call(*probe, Request("structural", {{"top", JsonValue(1)}}))
                    .Get("ok")
                    .AsBool());
    one_entry_bytes = probe->cache().MemoryBytes();
    ASSERT_GT(one_entry_bytes, 0u);
  }

  ServerOptions options = BaseOptions();
  options.cache_bytes = one_entry_bytes + 256;
  const auto server = StartServer(std::move(options));
  ASSERT_TRUE(Call(*server, Request("structural", {{"top", JsonValue(1)}}))
                  .Get("ok")
                  .AsBool());
  ASSERT_TRUE(Call(*server, Request("structural", {{"top", JsonValue(2)}}))
                  .Get("ok")
                  .AsBool());
  EXPECT_GE(server->cache().evictions(), 1u);
  EXPECT_LE(server->cache().MemoryBytes(), server->cache().capacity_bytes());

  // The evicted (older) entry misses again.
  const JsonValue again =
      Call(*server, Request("structural", {{"top", JsonValue(1)}}));
  ASSERT_TRUE(again.Get("ok").AsBool());
  EXPECT_FALSE(again.Get("cached").AsBool(true));
}

TEST_F(ServerTest, TemporalMiningOverTheWire) {
  const auto server = StartServer(BaseOptions());
  const JsonValue request = Request(
      "temporal", {{"support_fraction", JsonValue(0.05)},
                   {"top", JsonValue(2)}});
  const JsonValue response = Call(*server, request);
  ASSERT_TRUE(response.Get("ok").AsBool());
  EXPECT_EQ(response.Get("result").Get("outcome").AsString(), "complete");
  EXPECT_GT(response.Get("result").Get("num_patterns").AsInt(), 0);
  EXPECT_TRUE(Call(*server, request).Get("cached").AsBool());
}

TEST_F(ServerTest, BadParamsAreRejectedNotMined) {
  const auto server = StartServer(BaseOptions());
  const JsonValue typo = Call(
      *server, Request("structural", {{"supprt", JsonValue(10)}}));
  EXPECT_FALSE(typo.Get("ok").AsBool());
  EXPECT_EQ(typo.Get("code").AsString(), "bad_request");

  const JsonValue wrong_type = Call(
      *server, Request("structural", {{"support", JsonValue("ten")}}));
  EXPECT_FALSE(wrong_type.Get("ok").AsBool());
  EXPECT_EQ(wrong_type.Get("code").AsString(), "bad_request");
}

TEST_F(ServerTest, NoSnapshotIsAnHonestError) {
  ServerOptions options;
  options.listen = "tcp:127.0.0.1:0";
  const auto server = StartServer(std::move(options));
  const JsonValue response = Call(*server, Request("structural"));
  EXPECT_FALSE(response.Get("ok").AsBool());
  EXPECT_EQ(response.Get("code").AsString(), "no_snapshot");
}

TEST_F(ServerTest, UnixSocketEndToEnd) {
  ServerOptions options = BaseOptions();
  const std::string spec =
      "unix:" + ::testing::TempDir() + "/server_test.sock";
  options.listen = spec;
  const auto server = StartServer(std::move(options));
  EXPECT_EQ(server->address(), spec);
  EXPECT_TRUE(Call(*server, Request("ping")).Get("ok").AsBool());
}

TEST_F(ServerTest, RequestIdIsEchoed) {
  const auto server = StartServer(BaseOptions());
  JsonValue request = Request("ping");
  request.Set("id", "req-42");
  const JsonValue response = Call(*server, request);
  EXPECT_TRUE(response.Get("ok").AsBool());
  EXPECT_EQ(response.Get("id").AsString(), "req-42");
}

// --------------------------------------------------------------------
// Wire-level robustness (DESIGN.md §15): raw sockets below
// BlockingClient so the tests control every byte on the wire.

/// Raw blocking TCP connect to the server's resolved address.
int RawConnect(const Server& server) {
  ListenAddress addr;
  std::string error;
  if (!ListenAddress::Parse(server.address(), &addr, &error)) return -1;
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sin.sin_addr) != 1) {
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(put);
  }
  return true;
}

bool SendRawFrame(int fd, std::string_view payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const char header[4] = {static_cast<char>((len >> 24) & 0xFF),
                          static_cast<char>((len >> 16) & 0xFF),
                          static_cast<char>((len >> 8) & 0xFF),
                          static_cast<char>(len & 0xFF)};
  return SendAll(fd, header, sizeof(header)) &&
         SendAll(fd, payload.data(), payload.size());
}

/// Milliseconds until the server closed `fd`, or -1 when it did not
/// within `limit_ms`.
long MsUntilPeerClose(int fd, long limit_ms) {
  const auto start = std::chrono::steady_clock::now();
  char b;
  for (;;) {
    const long elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (elapsed >= limit_ms) return -1;
    const ssize_t got = ::recv(fd, &b, 1, 0);
    if (got == 0) return elapsed;  // orderly close
    if (got < 0 && errno != EINTR) return elapsed;  // RST et al.
    // Response bytes — drain and keep waiting for the close.
  }
}

/// Sends one raw frame and expects a bad_request response on the same
/// socket — the contract for well-framed-but-invalid payloads.
void ExpectBadRequestForPayload(const Server& server,
                                std::string_view payload) {
  const int fd = RawConnect(server);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendRawFrame(fd, payload));
  std::string raw;
  ASSERT_EQ(ReadFrameDeadline(fd, &raw, 30000, 30000),
            FrameReadStatus::kFrame)
      << "no response frame for payload: " << payload;
  ::close(fd);
  JsonValue response;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(raw, &response, &error)) << error;
  EXPECT_FALSE(response.Get("ok").AsBool(true));
  EXPECT_EQ(response.Get("code").AsString(), "bad_request");
}

TEST_F(ServerTest, MalformedPayloadsAnswerBadRequest) {
  const auto server = StartServer(BaseOptions());
  const char* kPayloads[] = {
      "",             // zero-length frame
      "\x01garbage",  // not JSON
      "[1,2,3]",      // JSON non-object
      "\"ping\"",     // JSON string
  };
  for (const char* payload : kPayloads) {
    ExpectBadRequestForPayload(*server, payload);
    // Whatever the hostile frame was, the next honest request is served.
    EXPECT_TRUE(Call(*server, Request("ping")).Get("ok").AsBool());
  }
  EXPECT_GE(server->conn_bad_frame(), 4u);
}

TEST_F(ServerTest, OversizedLengthPrefixIsDroppedCleanly) {
  ServerOptions options = BaseOptions();
  options.io_timeout_ms = 500;
  const auto server = StartServer(std::move(options));
  const int fd = RawConnect(*server);
  ASSERT_GE(fd, 0);
  const std::uint32_t len = kMaxFrameBytes + 1;
  const char header[4] = {static_cast<char>((len >> 24) & 0xFF),
                          static_cast<char>((len >> 16) & 0xFF),
                          static_cast<char>((len >> 8) & 0xFF),
                          static_cast<char>(len & 0xFF)};
  ASSERT_TRUE(SendAll(fd, header, sizeof(header)));
  // No resync is possible after a lying length prefix: the only safe
  // move is to drop, not to answer.
  EXPECT_GE(MsUntilPeerClose(fd, 10000), 0);
  ::close(fd);
  EXPECT_GE(server->conn_bad_frame(), 1u);
  EXPECT_TRUE(Call(*server, Request("ping")).Get("ok").AsBool());
}

TEST_F(ServerTest, TruncatedHeaderThenCloseIsHarmless) {
  const auto server = StartServer(BaseOptions());
  const int fd = RawConnect(*server);
  ASSERT_GE(fd, 0);
  const char half[2] = {0, 0};
  ASSERT_TRUE(SendAll(fd, half, sizeof(half)));
  ::close(fd);  // die mid-header
  EXPECT_TRUE(Call(*server, Request("ping")).Get("ok").AsBool());
}

TEST_F(ServerTest, MidFrameStallerDroppedWithinIoTimeout) {
  ServerOptions options = BaseOptions();
  options.io_timeout_ms = 250;
  const auto server = StartServer(std::move(options));
  const int fd = RawConnect(*server);
  ASSERT_GE(fd, 0);
  // Start a frame (two header bytes) and then stall forever: the
  // monotonic I/O budget — not per-byte progress — must cut us off.
  const char torn[2] = {0, 0};
  ASSERT_TRUE(SendAll(fd, torn, sizeof(torn)));
  const long dropped_ms = MsUntilPeerClose(fd, 30000);
  ::close(fd);
  ASSERT_GE(dropped_ms, 0) << "mid-frame staller was never dropped";
  // Bounded by the configured budget plus scheduling slack — and far
  // under the 5s a broken (infinite) deadline would blow through.
  EXPECT_LT(dropped_ms, 5000);
  EXPECT_GE(server->conn_io_timeout(), 1u);
  EXPECT_TRUE(Call(*server, Request("ping")).Get("ok").AsBool());
}

TEST_F(ServerTest, IdleConnectionsAreReaped) {
  ServerOptions options = BaseOptions();
  options.idle_timeout_ms = 200;
  const auto server = StartServer(std::move(options));
  const int fd = RawConnect(*server);
  ASSERT_GE(fd, 0);
  // Never send a byte: the idle deadline is the reaper.
  EXPECT_GE(MsUntilPeerClose(fd, 30000), 0);
  ::close(fd);
  EXPECT_GE(server->conn_idle_reaped(), 1u);
  EXPECT_TRUE(Call(*server, Request("ping")).Get("ok").AsBool());
}

TEST_F(ServerTest, StatsExposeConnectionCounters) {
  ServerOptions options = BaseOptions();
  options.accept_backlog = 17;
  const auto server = StartServer(std::move(options));
  const JsonValue response = Call(*server, Request("stats"));
  ASSERT_TRUE(response.Get("ok").AsBool());
  const JsonValue& stats = response.Get("result").Get("server");
  EXPECT_GE(stats.Get("conn_accepted").AsInt(), 1);
  EXPECT_GE(stats.Get("conn_open").AsInt(), 1);  // our own connection
  EXPECT_EQ(stats.Get("accept_backlog").AsInt(), 17);
  EXPECT_EQ(stats.Get("conn_idle_reaped").AsInt(), 0);
  EXPECT_EQ(stats.Get("conn_io_timeout").AsInt(), 0);
  EXPECT_EQ(stats.Get("conn_bad_frame").AsInt(), 0);
  EXPECT_EQ(stats.Get("conn_torn").AsInt(), 0);
  EXPECT_EQ(stats.Get("accept_failures").AsInt(), 0);
}

TEST_F(ServerTest, ClientErrorsNameAddressAndErrno) {
  BlockingClient client;
  std::string error;
  // Port 1 on localhost: reliably refused, never listening.
  EXPECT_FALSE(client.Connect("tcp:127.0.0.1:1", &error));
  EXPECT_NE(error.find("tcp:127.0.0.1:1"), std::string::npos) << error;
  // strerror text, not a bare "connect failed".
  EXPECT_NE(error.find("refused"), std::string::npos) << error;
}

#if TNMINE_FAILPOINTS_ENABLED
TEST_F(ServerTest, ConnectRetriesThroughTransientFailure) {
  const auto server = StartServer(BaseOptions());
  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm("wire/connect_fail", failpoint::Kind::kIoError));

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 10;
  policy.jitter_seed = 42;

  BlockingClient client;
  std::string error;
  // First attempt hits the armed failpoint; the retry succeeds.
  EXPECT_TRUE(client.Connect(server->address(), policy, &error)) << error;
  JsonValue response;
  EXPECT_TRUE(client.Call(Request("ping"), &response, &error)) << error;
  EXPECT_TRUE(response.Get("ok").AsBool());
  failpoint::DisarmAll();
}

TEST_F(ServerTest, ConnectWithoutRetryGivesUpOnTransientFailure) {
  const auto server = StartServer(BaseOptions());
  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm("wire/connect_fail", failpoint::Kind::kIoError));
  BlockingClient client;
  std::string error;
  EXPECT_FALSE(client.Connect(server->address(), &error));
  EXPECT_NE(error.find(server->address()), std::string::npos) << error;
  failpoint::DisarmAll();
}

TEST_F(ServerTest, CallWithRetryRidesThroughInjectedWriteFault) {
  const auto server = StartServer(BaseOptions());
  BlockingClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(server->address(), &error)) << error;

  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm("wire/write_short", failpoint::Kind::kIoError));
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 10;
  JsonValue response;
  // The injected short write kills the first attempt; CallWithRetry
  // reconnects (framing state is unknown after a failed send) and the
  // second attempt completes.
  EXPECT_TRUE(client.CallWithRetry(Request("ping"), policy,
                                   /*idempotent=*/true, &response, &error))
      << error;
  EXPECT_TRUE(response.Get("ok").AsBool());
  failpoint::DisarmAll();
}

TEST_F(ServerTest, NonIdempotentRequestsAreNotRetried) {
  const auto server = StartServer(BaseOptions());
  BlockingClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(server->address(), &error)) << error;

  failpoint::DisarmAll();
  ASSERT_TRUE(failpoint::Arm("wire/write_short", failpoint::Kind::kIoError));
  RetryPolicy policy;
  policy.max_attempts = 3;
  JsonValue response;
  // Declared non-idempotent: the transport failure surfaces immediately
  // instead of re-sending a request that might have taken effect.
  EXPECT_FALSE(client.CallWithRetry(Request("ping"), policy,
                                    /*idempotent=*/false, &response,
                                    &error));
  failpoint::DisarmAll();
}
#endif  // TNMINE_FAILPOINTS_ENABLED

}  // namespace
}  // namespace tnmine::server
