#include "ml/em.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "ml/kmeans.h"

namespace tnmine::ml {
namespace {

/// Table with three well-separated 2-D Gaussian blobs (sizes 60/30/10).
AttributeTable ThreeBlobs(std::uint64_t seed) {
  AttributeTable t;
  t.AddNumericAttribute("a");
  t.AddNumericAttribute("b");
  Rng rng(seed);
  auto blob = [&](double cx, double cy, int n) {
    for (int i = 0; i < n; ++i) {
      t.AddRow({rng.NextGaussian(cx, 0.5), rng.NextGaussian(cy, 0.5)});
    }
  };
  blob(0, 0, 60);
  blob(10, 0, 30);
  blob(0, 10, 10);
  return t;
}

TEST(KMeansTest, SeparatesBlobs) {
  const AttributeTable t = ThreeBlobs(1);
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < t.num_rows(); ++i) points.push_back(t.row(i));
  KMeansOptions options;
  options.k = 3;
  options.seed = 2;
  const KMeansResult r = RunKMeans(points, options);
  EXPECT_EQ(r.centroids.size(), 3u);
  // Inertia for well-separated blobs is small relative to a single-cluster
  // solution.
  KMeansOptions one;
  one.k = 1;
  const KMeansResult r1 = RunKMeans(points, one);
  EXPECT_LT(r.inertia, r1.inertia / 5.0);
}

TEST(KMeansTest, KLargerThanPointsClamped) {
  std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  KMeansOptions options;
  options.k = 10;
  const KMeansResult r = RunKMeans(points, options);
  EXPECT_LE(r.centroids.size(), 2u);
}

TEST(EmTest, RecoverFixedK) {
  const AttributeTable t = ThreeBlobs(3);
  EmOptions options;
  options.num_clusters = 3;
  options.seed = 4;
  const EmResult r = FitEm(t, {0, 1}, options);
  EXPECT_EQ(r.num_clusters, 3);
  // Largest-first ordering.
  for (std::size_t c = 1; c < r.priors.size(); ++c) {
    EXPECT_GE(r.priors[c - 1], r.priors[c]);
  }
  // Sizes approximately 60/30/10.
  EXPECT_NEAR(static_cast<double>(ClusterSize(r, 0)), 60, 6);
  EXPECT_NEAR(static_cast<double>(ClusterSize(r, 1)), 30, 6);
  EXPECT_NEAR(static_cast<double>(ClusterSize(r, 2)), 10, 4);
  // Means land near the blob centers (original units).
  double largest_a = r.means[0][0];
  EXPECT_NEAR(largest_a, 0.0, 0.5);
}

TEST(EmTest, SelectsKByCrossValidation) {
  const AttributeTable t = ThreeBlobs(5);
  EmOptions options;
  options.num_clusters = 0;  // auto
  options.max_clusters = 6;
  options.seed = 6;
  const EmResult r = FitEm(t, {0, 1}, options);
  EXPECT_GE(r.num_clusters, 2);
  EXPECT_LE(r.num_clusters, 4);  // three blobs, some tolerance
}

TEST(EmTest, SoftCountsSumToN) {
  const AttributeTable t = ThreeBlobs(7);
  EmOptions options;
  options.num_clusters = 3;
  const EmResult r = FitEm(t, {0, 1}, options);
  double total = 0.0;
  for (double c : r.soft_counts) total += c;
  EXPECT_NEAR(total, static_cast<double>(t.num_rows()), 1e-6);
}

TEST(EmTest, ClusterMeanMatchesManual) {
  const AttributeTable t = ThreeBlobs(9);
  EmOptions options;
  options.num_clusters = 3;
  const EmResult r = FitEm(t, {0, 1}, options);
  const double mean0 = ClusterMean(t, r, 0, 0);
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    if (r.assignment[i] == 0) {
      sum += t.value(i, 0);
      ++count;
    }
  }
  ASSERT_GT(count, 0u);
  EXPECT_NEAR(mean0, sum / static_cast<double>(count), 1e-9);
}

TEST(EmTest, TinyOutlierClusterSurvives) {
  // The paper's cluster 0: three extreme outliers (air freight) must form
  // their own cluster rather than be absorbed.
  AttributeTable t;
  t.AddNumericAttribute("distance");
  t.AddNumericAttribute("hours");
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const double d = rng.NextDouble(50, 1200);
    t.AddRow({d, d / 45.0 + rng.NextDouble(2, 20)});
  }
  for (int i = 0; i < 3; ++i) {
    t.AddRow({3100.0 + rng.NextDouble(0, 50), 9.0 + rng.NextDouble(0, 1)});
  }
  EmOptions options;
  options.num_clusters = 4;
  options.seed = 12;
  const EmResult r = FitEm(t, {0, 1}, options);
  // Some cluster holds exactly the three outliers.
  bool found = false;
  for (int c = 0; c < r.num_clusters; ++c) {
    if (ClusterSize(r, c) == 3 && ClusterMean(t, r, 0, c) > 3000.0) {
      found = true;
      EXPECT_LT(ClusterMean(t, r, 1, c), 24.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(EmTest, DeterministicForSeed) {
  const AttributeTable t = ThreeBlobs(13);
  EmOptions options;
  options.num_clusters = 3;
  options.seed = 99;
  const EmResult a = FitEm(t, {0, 1}, options);
  const EmResult b = FitEm(t, {0, 1}, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.log_likelihood, b.log_likelihood);
}

}  // namespace
}  // namespace tnmine::ml
