// Tests for the observability layer (DESIGN.md §9): exact sharded-counter
// merges under ParallelFor, span nesting/closure under exceptions, the
// OFF-build no-op macros, RunReport rendering, and the determinism of the
// miner counters across thread counts. A golden Chrome trace_event file
// under tests/golden/ pins the exporter's byte format (regenerate with
// TNMINE_REGEN_GOLDEN=1 after an intentional change).

#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "graph/labeled_graph.h"
#include "gspan/gspan.h"

namespace tnmine {
namespace {

using telemetry::MetricsSnapshot;
using telemetry::Registry;

std::string GoldenPath(const std::string& name) {
  return std::string(TNMINE_GOLDEN_DIR) + "/" + name;
}

bool Regenerating() {
  const char* env = std::getenv("TNMINE_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with TNMINE_REGEN_GOLDEN=1 to create)";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// -------------------------------------------------------------------------
// Counters, gauges, histograms.

TEST(TelemetryTest, CounterMergeAcrossParallelForIsExact) {
  telemetry::Counter& counter =
      Registry::Global().GetCounter("test/parallel_adds");
  counter.Reset();
  const std::size_t n = 10000;
  common::ParallelFor(common::Parallelism{4}, n, [&](std::size_t i) {
    counter.Add(i + 1);  // totals n*(n+1)/2, every shard merged exactly
  });
  EXPECT_EQ(counter.Value(), n * (n + 1) / 2);
}

#if TNMINE_TELEMETRY_ENABLED
TEST(TelemetryTest, CounterMacroCachesRegistryLookup) {
  Registry::Global().GetCounter("test/macro_adds").Reset();
  for (int i = 0; i < 3; ++i) TNMINE_COUNTER_ADD("test/macro_adds", 2);
  EXPECT_EQ(Registry::Global().GetCounter("test/macro_adds").Value(), 6u);
}
#endif  // TNMINE_TELEMETRY_ENABLED

TEST(TelemetryTest, GaugeSetAndSetMax) {
  telemetry::Gauge& gauge = Registry::Global().GetGauge("test/gauge");
  gauge.Set(1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.5);
  gauge.SetMax(0.5);  // lower: ignored
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.5);
  gauge.SetMax(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
}

TEST(TelemetryTest, HistogramCountsIntoLogBuckets) {
  telemetry::LatencyHistogram& histogram =
      Registry::Global().GetHistogram("test/histogram");
  histogram.Reset();
  histogram.RecordNanos(1);     // bucket [1, 2)
  histogram.RecordNanos(1000);  // bucket [512, 1024)... log2(1000)=9
  histogram.RecordNanos(1023);
  EXPECT_EQ(histogram.Count(), 3u);
  EXPECT_EQ(histogram.TotalNanos(), 2024u);
  const auto buckets = histogram.Snapshot();
  std::uint64_t total = 0;
  for (const auto& b : buckets) total += b.count;
  EXPECT_EQ(total, 3u);
}

// -------------------------------------------------------------------------
// Trace spans. The macro-based tests only exist in ON builds; with
// TNMINE_TELEMETRY=OFF the macros are no-ops by design, which the
// TelemetryOffTest cases below cover directly.

#if TNMINE_TELEMETRY_ENABLED
std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t FakeClock() { return g_fake_now.fetch_add(1000); }

/// Installs the deterministic fake clock for one test body.
class FakeClockScope {
 public:
  FakeClockScope() {
    g_fake_now.store(0);
    trace::Session::SetClockForTest(&FakeClock);
  }
  ~FakeClockScope() { trace::Session::SetClockForTest(nullptr); }
};

TEST(TraceTest, SpansNestAndCloseUnderExceptions) {
  FakeClockScope clock;
  trace::Session::Start();
  try {
    TNMINE_TRACE_SPAN("test/outer");
    TNMINE_TRACE_SPAN("test/inner");
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  trace::Session::Stop();
  const auto events = trace::Session::CollectedEvents();
  ASSERT_EQ(events.size(), 2u);  // both spans closed despite the throw
  EXPECT_STREQ(events[0].name, "test/outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_STREQ(events[1].name, "test/inner");
  EXPECT_EQ(events[1].depth, 1u);
  // Fake clock: base=0, outer opens at 1000, inner at 2000, inner closes
  // at 3000, outer at 4000.
  EXPECT_EQ(events[0].start_nanos, 1000u);
  EXPECT_EQ(events[0].duration_nanos, 3000u);
  EXPECT_EQ(events[1].start_nanos, 2000u);
  EXPECT_EQ(events[1].duration_nanos, 1000u);
}

TEST(TraceTest, SpanStatAggregatesWithoutRecordingSession) {
  Registry::Global().GetSpanStat("test/aggregate_only").Reset();
  {
    TNMINE_TRACE_SPAN("test/aggregate_only");
  }
  {
    TNMINE_TRACE_SPAN("test/aggregate_only");
  }
  EXPECT_EQ(Registry::Global().GetSpanStat("test/aggregate_only").Count(),
            2u);
}

TEST(TraceTest, ChromeTraceExportMatchesGolden) {
  FakeClockScope clock;
  trace::Session::Start();
  {
    TNMINE_TRACE_SPAN("gspan/mine");
    {
      TNMINE_TRACE_SPAN("gspan/seed_subtree");
    }
    {
      TNMINE_TRACE_SPAN("gspan/seed_subtree");
    }
  }
  trace::Session::Stop();
  const std::string json = trace::Session::ExportChromeTraceJson();
  const std::string path = GoldenPath("trace_event.json");
  if (Regenerating()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good());
    out << json;
    return;
  }
  EXPECT_EQ(json, ReadFileOrDie(path)) << "trace_event format drifted";
}
#endif  // TNMINE_TELEMETRY_ENABLED

// -------------------------------------------------------------------------
// OFF-build behaviour (compiled here in an ON build via the _OFF/_NOOP
// internals the kill switch selects; a full OFF compile runs in CI with
// -DTNMINE_TELEMETRY=OFF).

TEST(TelemetryOffTest, NoopMacrosDoNotEvaluateArguments) {
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return std::uint64_t{1};
  };
  TNMINE_INTERNAL_TELEMETRY_NOOP("test/off_counter", count());
  EXPECT_EQ(evaluations, 0);  // (void)sizeof never evaluates
  (void)count;
}

TEST(TelemetryOffTest, NullSpanCarriesNoState) {
  TNMINE_INTERNAL_TRACE_SPAN_OFF("test/off_span");
  static_assert(sizeof(trace::NullSpan) == 1 &&
                    std::is_empty_v<trace::NullSpan>,
                "OFF-build spans must compile away");
}

// -------------------------------------------------------------------------
// RunReports.

TEST(RunReportTest, RendersCountersAndMetadata) {
  Registry::Global().ResetAll();
  TNMINE_COUNTER_ADD("test/report_counter", 7);
  telemetry::RunReportOptions options;
  options.binary = "telemetry_test";
  options.wall_seconds = 1.25;
  options.extra["workload"] = "unit";
  const std::string report = telemetry::RenderRunReport(options);
  EXPECT_NE(report.find("\"report_version\": 1"), std::string::npos);
  EXPECT_NE(report.find("\"binary\": \"telemetry_test\""),
            std::string::npos);
#if TNMINE_TELEMETRY_ENABLED
  EXPECT_NE(report.find("\"test/report_counter\": 7"), std::string::npos);
#endif
  EXPECT_NE(report.find("\"hardware_concurrency\""), std::string::npos);
  EXPECT_NE(report.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(report.find("\"workload\": \"unit\""), std::string::npos);
  EXPECT_NE(report.find("\"wall_seconds\": 1.25"), std::string::npos);
}

// -------------------------------------------------------------------------
// Miner-counter determinism across thread counts (the acceptance bar for
// every `subsystem/*` counter except threadpool/, which describes the
// schedule itself; see DESIGN.md §9). Skipped in OFF builds where the
// miners record nothing.

#if TNMINE_TELEMETRY_ENABLED
std::vector<graph::LabeledGraph> TinyTransactions() {
  std::vector<graph::LabeledGraph> transactions;
  for (int t = 0; t < 6; ++t) {
    graph::LabeledGraph g;
    const auto a = g.AddVertex(1);
    const auto b = g.AddVertex(2);
    const auto c = g.AddVertex(t % 2 == 0 ? 3 : 2);
    g.AddEdge(a, b, 10);
    g.AddEdge(b, c, 11);
    if (t % 3 == 0) g.AddEdge(a, c, 12);
    transactions.push_back(std::move(g));
  }
  return transactions;
}

std::map<std::string, std::uint64_t> GspanCountersAtThreads(
    std::size_t threads) {
  const auto transactions = TinyTransactions();
  Registry::Global().ResetAll();
  gspan::GspanOptions options;
  options.min_support = 3;
  options.parallelism = common::Parallelism{threads};
  gspan::MineGspan(transactions, options);
  std::map<std::string, std::uint64_t> counters;
  for (const auto& [name, value] : Registry::Global().Snapshot().counters) {
    if (name.rfind("gspan/", 0) == 0) counters[name] = value;
  }
  return counters;
}

TEST(TelemetryTest, GspanCountersDeterministicAcrossThreadCounts) {
  const auto at1 = GspanCountersAtThreads(1);
  const auto at4 = GspanCountersAtThreads(4);
  EXPECT_EQ(at1, at4);
  ASSERT_TRUE(at1.contains("gspan/patterns_emitted"));
  EXPECT_GT(at1.at("gspan/patterns_emitted"), 0u);
  EXPECT_GT(at1.at("gspan/seeds_expanded"), 0u);
}
#endif  // TNMINE_TELEMETRY_ENABLED

}  // namespace
}  // namespace tnmine
