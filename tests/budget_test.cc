// Resource-governance tests: the tick dimension of a ResourceBudget is
// deterministic by construction (allotments are Slice()d before the
// parallel fan-out), so the same tick budget must produce byte-identical
// partial results at any thread count, and a truncated run must carry an
// honest non-complete outcome alongside valid partial patterns.

#include "common/budget.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/miner.h"
#include "fsg/fsg.h"
#include "graph/labeled_graph.h"
#include "gspan/gspan.h"
#include "iso/canonical.h"
#include "partition/split_graph.h"
#include "pattern/pattern.h"
#include "pattern/tid_set.h"

namespace tnmine::common {
namespace {

using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

std::vector<LabeledGraph> RandomTransactions(std::uint64_t seed,
                                             std::size_t count,
                                             std::size_t vertices,
                                             std::size_t edges, int vlabels,
                                             int elabels) {
  Rng rng(seed);
  std::vector<LabeledGraph> txns;
  for (std::size_t t = 0; t < count; ++t) {
    LabeledGraph g;
    for (std::size_t i = 0; i < vertices; ++i) {
      g.AddVertex(static_cast<Label>(rng.NextBounded(vlabels)));
    }
    for (std::size_t i = 0; i < edges; ++i) {
      g.AddEdge(static_cast<VertexId>(rng.NextBounded(vertices)),
                static_cast<VertexId>(rng.NextBounded(vertices)),
                static_cast<Label>(rng.NextBounded(elabels)));
    }
    txns.push_back(std::move(g));
  }
  return txns;
}

/// Byte-exact fingerprint of a pattern list: canonical code + support +
/// tids, in result order. Two runs that truncated identically produce
/// identical fingerprints.
std::string Fingerprint(const std::vector<pattern::FrequentPattern>& ps) {
  std::string out;
  for (const pattern::FrequentPattern& p : ps) {
    out += iso::CanonicalCode(p.graph);
    out += '#';
    out += std::to_string(p.support);
    for (std::uint32_t tid : p.tids) {
      out += ',';
      out += std::to_string(tid);
    }
    out += '\n';
  }
  return out;
}

TEST(BudgetTest, CombineOutcomesTakesSeverityMax) {
  EXPECT_EQ(CombineOutcomes(MiningOutcome::kComplete,
                            MiningOutcome::kDeadlineExceeded),
            MiningOutcome::kDeadlineExceeded);
  EXPECT_EQ(CombineOutcomes(MiningOutcome::kCancelled,
                            MiningOutcome::kMemoryBudgetExceeded),
            MiningOutcome::kCancelled);
  EXPECT_EQ(CombineOutcomes(MiningOutcome::kComplete,
                            MiningOutcome::kComplete),
            MiningOutcome::kComplete);
}

TEST(BudgetTest, SlicePartitionsTheAllotmentExactly) {
  BudgetLimits limits;
  limits.max_work_ticks = 10;
  const ResourceBudget budget(limits);
  std::uint64_t total = 0;
  for (std::size_t unit = 0; unit < 3; ++unit) {
    total += budget.Slice(unit, 3).tick_allotment();
  }
  EXPECT_EQ(total, 10u);
  // Remainder ticks go to the lowest-index units.
  EXPECT_EQ(budget.Slice(0, 3).tick_allotment(), 4u);
  EXPECT_EQ(budget.Slice(2, 3).tick_allotment(), 3u);
}

TEST(BudgetTest, MeterStopsAtTheAllotment) {
  BudgetLimits limits;
  limits.max_work_ticks = 5;
  BudgetMeter meter{ResourceBudget(limits)};
  EXPECT_EQ(meter.Charge(3), MiningOutcome::kComplete);
  EXPECT_EQ(meter.Charge(2), MiningOutcome::kComplete);
  EXPECT_EQ(meter.Charge(1), MiningOutcome::kDeadlineExceeded);
  // Sticky once stopped.
  EXPECT_EQ(meter.Charge(1), MiningOutcome::kDeadlineExceeded);
}

TEST(BudgetTest, AccountingOnlyBudgetNeverStops) {
  BudgetMeter meter{ResourceBudget(BudgetLimits{})};
  EXPECT_EQ(meter.Charge(1u << 20), MiningOutcome::kComplete);
  EXPECT_EQ(meter.ticks_spent(), 1u << 20);
}

TEST(BudgetTest, MemoryCeilingTripsAndReleases) {
  BudgetLimits limits;
  limits.max_memory_bytes = 100;
  const ResourceBudget budget(limits);
  EXPECT_TRUE(budget.TryChargeMemory(60));
  EXPECT_FALSE(budget.TryChargeMemory(60));  // would exceed: rejected
  EXPECT_EQ(budget.StopReason(), MiningOutcome::kMemoryBudgetExceeded);
  budget.ReleaseMemory(60);
  EXPECT_EQ(budget.memory_charged(), 0u);
  // The trip is sticky: a budget that overflowed stays stopped.
  EXPECT_EQ(budget.StopReason(), MiningOutcome::kMemoryBudgetExceeded);
}

TEST(BudgetTest, CancelTokenWinsOverEverything) {
  auto cancel = std::make_shared<CancelToken>();
  BudgetLimits limits;
  limits.max_work_ticks = 1;
  const ResourceBudget budget(limits, cancel);
  cancel->RequestCancel();
  EXPECT_EQ(budget.StopReason(), MiningOutcome::kCancelled);
}

// --- gSpan under a tick budget -------------------------------------------

struct GspanRun {
  gspan::GspanResult result;
  std::string fingerprint;
};

GspanRun RunGspan(const std::vector<LabeledGraph>& txns,
                  std::uint64_t max_ticks, std::size_t threads,
                  std::shared_ptr<CancelToken> cancel = nullptr) {
  gspan::GspanOptions options;
  options.min_support = 2;
  options.max_edges = 4;
  options.parallelism = Parallelism{threads};
  BudgetLimits limits;
  limits.max_work_ticks = max_ticks;
  options.budget = ResourceBudget(limits, std::move(cancel));
  GspanRun run;
  run.result = gspan::MineGspan(txns, options);
  run.fingerprint = Fingerprint(run.result.patterns);
  return run;
}

TEST(BudgetTest, GspanHalfTickBudgetTruncatesDeterministically) {
  const auto txns = RandomTransactions(11, 24, 8, 14, 2, 2);

  // Measure the unbounded tick cost with an accounting-only budget.
  const GspanRun unbounded = RunGspan(txns, 0, 1);
  ASSERT_EQ(unbounded.result.outcome, MiningOutcome::kComplete);
  ASSERT_GT(unbounded.result.work_ticks, 100u);

  // Roughly half the budget: truncated but non-empty.
  const std::uint64_t half = unbounded.result.work_ticks / 2;
  const GspanRun t1 = RunGspan(txns, half, 1);
  EXPECT_EQ(t1.result.outcome, MiningOutcome::kDeadlineExceeded);
  EXPECT_FALSE(t1.result.patterns.empty());
  EXPECT_LT(t1.result.patterns.size(), unbounded.result.patterns.size());

  // Byte-identical partial output at 2 and 4 threads.
  const GspanRun t2 = RunGspan(txns, half, 2);
  const GspanRun t4 = RunGspan(txns, half, 4);
  EXPECT_EQ(t1.fingerprint, t2.fingerprint);
  EXPECT_EQ(t1.fingerprint, t4.fingerprint);
  EXPECT_EQ(t2.result.outcome, MiningOutcome::kDeadlineExceeded);
  EXPECT_EQ(t4.result.outcome, MiningOutcome::kDeadlineExceeded);

  // Tick accounting itself is thread-count independent.
  EXPECT_EQ(t1.result.work_ticks, t2.result.work_ticks);
  EXPECT_EQ(t1.result.work_ticks, t4.result.work_ticks);
}

TEST(BudgetTest, GspanCancelledNeverReportsComplete) {
  const auto txns = RandomTransactions(3, 12, 6, 10, 2, 2);
  auto cancel = std::make_shared<CancelToken>();
  cancel->RequestCancel();
  const GspanRun run = RunGspan(txns, 0, 2, cancel);
  EXPECT_EQ(run.result.outcome, MiningOutcome::kCancelled);
}

// --- FSG under a tick budget ---------------------------------------------

struct FsgRun {
  fsg::FsgResult result;
  std::string fingerprint;
};

FsgRun RunFsg(const std::vector<LabeledGraph>& txns, std::uint64_t max_ticks,
              std::size_t threads) {
  fsg::FsgOptions options;
  options.min_support = 2;
  options.max_edges = 4;
  options.parallelism = Parallelism{threads};
  BudgetLimits limits;
  limits.max_work_ticks = max_ticks;
  options.budget = ResourceBudget(limits);
  FsgRun run;
  run.result = fsg::MineFsg(txns, options);
  run.fingerprint = Fingerprint(run.result.patterns);
  return run;
}

TEST(BudgetTest, FsgHalfTickBudgetTruncatesDeterministically) {
  const auto txns = RandomTransactions(17, 24, 8, 14, 2, 2);

  const FsgRun unbounded = RunFsg(txns, 0, 1);
  ASSERT_EQ(unbounded.result.outcome, MiningOutcome::kComplete);
  ASSERT_GT(unbounded.result.work_ticks, 100u);

  const std::uint64_t half = unbounded.result.work_ticks / 2;
  const FsgRun t1 = RunFsg(txns, half, 1);
  EXPECT_EQ(t1.result.outcome, MiningOutcome::kDeadlineExceeded);
  EXPECT_FALSE(t1.result.patterns.empty());

  const FsgRun t2 = RunFsg(txns, half, 2);
  const FsgRun t4 = RunFsg(txns, half, 4);
  EXPECT_EQ(t1.fingerprint, t2.fingerprint);
  EXPECT_EQ(t1.fingerprint, t4.fingerprint);
  EXPECT_EQ(t1.result.work_ticks, t2.result.work_ticks);
  EXPECT_EQ(t1.result.work_ticks, t4.result.work_ticks);

  // The TID-set encoding must not shift the truncation point either: the
  // same tick budget mines the same pattern prefix whether every set is
  // forced sparse or forced bitmap (DESIGN.md §12).
  {
    const pattern::TidSet::ScopedEncodingPolicy force_sparse(
        pattern::TidSet::EncodingPolicy::kForceSparse);
    const FsgRun sparse = RunFsg(txns, half, 2);
    EXPECT_EQ(sparse.fingerprint, t1.fingerprint);
    EXPECT_EQ(sparse.result.work_ticks, t1.result.work_ticks);
  }
  {
    const pattern::TidSet::ScopedEncodingPolicy force_bitmap(
        pattern::TidSet::EncodingPolicy::kForceBitmap);
    const FsgRun bitmap = RunFsg(txns, half, 4);
    EXPECT_EQ(bitmap.fingerprint, t1.fingerprint);
    EXPECT_EQ(bitmap.result.work_ticks, t1.result.work_ticks);
  }
}

TEST(BudgetTest, TruncatedFsgOutputIsAPrefixOfTheUnbudgetedRun) {
  // The truncation-shape oracle (DESIGN.md §13, cross-checked at scale by
  // tools/scenario_fuzz --oracle budget_prefix): FSG appends patterns
  // level by level, each level in sorted canonical-code order, and the
  // tick ledger settles candidates in that same order — so whatever the
  // cut point, the truncated pattern list is an exact prefix (codes,
  // supports, and tid sets) of the unbudgeted list.
  const auto txns = RandomTransactions(17, 24, 8, 14, 2, 2);
  const FsgRun full = RunFsg(txns, 0, 1);
  ASSERT_EQ(full.result.outcome, MiningOutcome::kComplete);
  ASSERT_GT(full.result.work_ticks, 100u);
  for (const std::uint64_t denominator : {8u, 4u, 2u, 1u}) {
    const std::uint64_t allotment = full.result.work_ticks / denominator;
    const FsgRun cut = RunFsg(txns, allotment, 1);
    EXPECT_LE(cut.fingerprint.size(), full.fingerprint.size());
    EXPECT_EQ(full.fingerprint.compare(0, cut.fingerprint.size(),
                                       cut.fingerprint),
              0)
        << "allotment " << allotment << " of " << full.result.work_ticks;
    if (cut.result.outcome == MiningOutcome::kComplete) {
      EXPECT_EQ(cut.fingerprint, full.fingerprint);
    }
  }
}

TEST(BudgetTest, TruncatedGspanOutputIsASubsetWithIdenticalMetadata) {
  // gSpan's counterpart is deliberately weaker: the allotment is Slice()d
  // across seed subtrees and cross-subtree dedup claims can land on a
  // different seed once a subtree is cut short, so the truncated output is
  // NOT a prefix of the full emission order. What must hold — and what
  // makes a truncated run still trustworthy — is that every pattern it
  // emits appears in the unbudgeted run with the identical support and
  // tid set (a known-benign divergence from FSG; DESIGN.md §13).
  const auto txns = RandomTransactions(11, 24, 8, 14, 2, 2);
  const GspanRun full = RunGspan(txns, 0, 1);
  ASSERT_EQ(full.result.outcome, MiningOutcome::kComplete);
  ASSERT_GT(full.result.work_ticks, 100u);
  std::map<std::string, std::pair<std::size_t, std::vector<std::uint32_t>>>
      reference;
  for (const pattern::FrequentPattern& p : full.result.patterns) {
    reference[p.code] = {p.support, p.tids.ToVector()};
  }
  for (const std::uint64_t denominator : {8u, 4u, 2u}) {
    const GspanRun cut =
        RunGspan(txns, full.result.work_ticks / denominator, 1);
    EXPECT_LE(cut.result.patterns.size(), full.result.patterns.size());
    for (const pattern::FrequentPattern& p : cut.result.patterns) {
      auto it = reference.find(p.code);
      ASSERT_NE(it, reference.end()) << p.code;
      EXPECT_EQ(it->second.first, p.support) << p.code;
      EXPECT_EQ(it->second.second, p.tids.ToVector()) << p.code;
    }
  }
}

// --- Algorithm-1 driver under a tick budget ------------------------------

std::string RegistryFingerprint(const pattern::PatternRegistry& registry) {
  std::string out;
  for (const pattern::FrequentPattern* p : registry.SortedBySupport()) {
    out += iso::CanonicalCode(p->graph);
    out += '#';
    out += std::to_string(p->support);
    out += '\n';
  }
  return out;
}

TEST(BudgetTest, StructuralDriverTruncatesIdenticallyAcrossThreads) {
  // A dense random OD-style graph, partitioned and mined by Algorithm 1.
  Rng rng(5);
  LabeledGraph g;
  for (int i = 0; i < 40; ++i) g.AddVertex(0);
  for (int i = 0; i < 220; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(40)),
              static_cast<VertexId>(rng.NextBounded(40)),
              static_cast<Label>(rng.NextBounded(3)));
  }

  auto run = [&](std::uint64_t max_ticks, std::size_t threads) {
    core::StructuralMiningOptions options;
    options.num_partitions = 8;
    options.repetitions = 3;
    options.min_support = 2;
    options.max_pattern_edges = 3;
    options.miner = core::MinerKind::kGspan;
    options.parallelism = Parallelism{threads};
    BudgetLimits limits;
    limits.max_work_ticks = max_ticks;
    options.budget = ResourceBudget(limits);
    return core::MineStructuralPatterns(g, options);
  };

  const auto unbounded = run(0, 1);
  ASSERT_EQ(unbounded.outcome, MiningOutcome::kComplete);
  ASSERT_GT(unbounded.work_ticks, 100u);

  const std::uint64_t half = unbounded.work_ticks / 2;
  const auto t1 = run(half, 1);
  EXPECT_EQ(t1.outcome, MiningOutcome::kDeadlineExceeded);
  const auto t2 = run(half, 2);
  const auto t4 = run(half, 4);
  EXPECT_EQ(RegistryFingerprint(t1.registry), RegistryFingerprint(t2.registry));
  EXPECT_EQ(RegistryFingerprint(t1.registry), RegistryFingerprint(t4.registry));
  EXPECT_EQ(t1.work_ticks, t2.work_ticks);
  EXPECT_EQ(t1.work_ticks, t4.work_ticks);
  EXPECT_EQ(t2.outcome, MiningOutcome::kDeadlineExceeded);
  EXPECT_EQ(t4.outcome, MiningOutcome::kDeadlineExceeded);
}

TEST(BudgetTest, SplitGraphKeepsConsumedEdgesOnTruncation) {
  Rng rng(9);
  LabeledGraph g;
  for (int i = 0; i < 20; ++i) g.AddVertex(0);
  for (int i = 0; i < 80; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(20)),
              static_cast<VertexId>(rng.NextBounded(20)),
              static_cast<Label>(rng.NextBounded(2)));
  }
  partition::SplitOptions options;
  options.num_partitions = 4;
  BudgetLimits limits;
  limits.max_work_ticks = 30;  // well below the 80 edge moves needed
  options.budget = ResourceBudget(limits);
  const partition::SplitResult result =
      partition::SplitGraphBudgeted(g, options);
  EXPECT_EQ(result.outcome, MiningOutcome::kDeadlineExceeded);
  std::size_t assigned = 0;
  for (const LabeledGraph& part : result.partitions) {
    assigned += part.num_edges();
  }
  EXPECT_GT(assigned, 0u);
  EXPECT_LT(assigned, 80u);
}

}  // namespace
}  // namespace tnmine::common
