#include "graph/shard_store.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/budget.h"
#include "graph/graph_view.h"
#include "graph/labeled_graph.h"
#include "graph/transaction_source.h"

namespace tnmine::graph {
namespace {

/// splitmix64, same as tid_set_test.cc: failures reproduce everywhere.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Deterministic transaction with a seed-dependent shape: 3-9 vertices,
/// about twice as many edges (parallel edges and self-loops included, so
/// the multigraph paths of the format get exercised too).
LabeledGraph MakeTransaction(std::uint64_t seed) {
  LabeledGraph g;
  const std::size_t n = 3 + Mix64(seed) % 7;
  for (std::size_t v = 0; v < n; ++v) {
    g.AddVertex(static_cast<Label>(Mix64(seed ^ (v + 1)) % 5));
  }
  const std::size_t m = 2 * n;
  for (std::size_t e = 0; e < m; ++e) {
    const std::uint64_t h = Mix64(seed * 31 + e);
    g.AddEdge(static_cast<VertexId>(h % n),
              static_cast<VertexId>((h >> 16) % n),
              static_cast<Label>((h >> 32) % 3));
  }
  return g;
}

std::vector<LabeledGraph> MakeTransactions(std::size_t count,
                                           std::uint64_t seed) {
  std::vector<LabeledGraph> txns;
  txns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    txns.push_back(MakeTransaction(seed + i));
  }
  return txns;
}

/// Structural equality of two views: every accessor the miners read.
void ExpectSameGraph(const GraphView& a, const GraphView& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.edge_capacity(), b.edge_capacity());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.vertex_label(v), b.vertex_label(v));
    const auto ao = a.OutArcs(v);
    const auto bo = b.OutArcs(v);
    ASSERT_EQ(ao.size(), bo.size());
    for (std::size_t i = 0; i < ao.size(); ++i) {
      EXPECT_EQ(ao[i].other, bo[i].other);
      EXPECT_EQ(ao[i].label, bo[i].label);
      EXPECT_EQ(ao[i].edge, bo[i].edge);
    }
    ASSERT_EQ(a.InDegree(v), b.InDegree(v));
  }
  ASSERT_EQ(a.NumEdgeTypes(), b.NumEdgeTypes());
  for (std::size_t t = 0; t < a.NumEdgeTypes(); ++t) {
    EXPECT_EQ(a.EdgeTypeAt(t), b.EdgeTypeAt(t));
    const auto ae = a.EdgesOfType(t);
    const auto be = b.EdgesOfType(t);
    EXPECT_EQ(std::vector<EdgeId>(ae.begin(), ae.end()),
              std::vector<EdgeId>(be.begin(), be.end()));
  }
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool WriteShard(const std::string& path,
                const std::vector<LabeledGraph>& txns, std::string* error) {
  ShardWriter writer(path);
  for (const LabeledGraph& g : txns) writer.Add(g);
  return writer.Finish(error);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(ShardStoreTest, RoundTripPreservesEveryAccessor) {
  const auto txns = MakeTransactions(12, 100);
  const std::string path = TempPath("roundtrip.tnshard");
  std::string error;
  ASSERT_TRUE(WriteShard(path, txns, &error)) << error;

  auto shard = ShardFile::Open(path, &error, /*verify_fingerprint=*/true);
  ASSERT_NE(shard, nullptr) << error;
  ASSERT_EQ(shard->num_transactions(), txns.size());
  EXPECT_GT(shard->mapped_bytes(), sizeof(ShardHeader));
  for (std::size_t i = 0; i < txns.size(); ++i) {
    const GraphView loaded = shard->View(i);
    ASSERT_TRUE(loaded.CheckConsistent()) << "transaction " << i;
    ExpectSameGraph(GraphView(txns[i]), loaded);
  }
  std::remove(path.c_str());
}

TEST(ShardStoreTest, FileIsByteDeterministic) {
  const auto txns = MakeTransactions(8, 200);
  const std::string pa = TempPath("det-a.tnshard");
  const std::string pb = TempPath("det-b.tnshard");
  std::string error;
  ASSERT_TRUE(WriteShard(pa, txns, &error)) << error;
  ASSERT_TRUE(WriteShard(pb, txns, &error)) << error;
  const std::string bytes_a = ReadFileBytes(pa);
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, ReadFileBytes(pb));
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(ShardStoreTest, ViewKeepsEvictedMappingAlive) {
  const auto txns = MakeTransactions(4, 300);
  const std::string path = TempPath("keepalive.tnshard");
  std::string error;
  ASSERT_TRUE(WriteShard(path, txns, &error)) << error;

  GraphView survivor = [&] {
    auto shard = ShardFile::Open(path, &error);
    EXPECT_NE(shard, nullptr) << error;
    return shard->View(2);
  }();  // the ShardFile reference is gone; the view's keep-alive remains
  ASSERT_TRUE(survivor.CheckConsistent());
  ExpectSameGraph(GraphView(txns[2]), survivor);
  std::remove(path.c_str());
}

TEST(ShardStoreTest, FingerprintVerificationCatchesPayloadCorruption) {
  const auto txns = MakeTransactions(6, 400);
  const std::string path = TempPath("corrupt.tnshard");
  std::string error;
  ASSERT_TRUE(WriteShard(path, txns, &error)) << error;

  // Flip one payload byte (past header + offset table) in a way that
  // keeps the structure parseable: only the fingerprint can notice.
  std::string bytes = ReadFileBytes(path);
  const std::size_t payload_start =
      sizeof(ShardHeader) + (txns.size() + 1) * sizeof(std::uint64_t);
  ASSERT_LT(payload_start + 1, bytes.size());
  bytes[payload_start] ^= 0x01;  // first vertex label of transaction 0
  std::ofstream(path, std::ios::binary) << bytes;

  EXPECT_EQ(ShardFile::Open(path, &error, /*verify_fingerprint=*/true),
            nullptr);
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
  // The trusting open (the mining path) does not rehash the payload.
  EXPECT_NE(ShardFile::Open(path, &error), nullptr) << error;
  std::remove(path.c_str());
}

TEST(ShardStoreTest, RejectsBadMagicVersionAndTruncation) {
  const auto txns = MakeTransactions(3, 500);
  const std::string path = TempPath("malformed.tnshard");
  std::string error;
  ASSERT_TRUE(WriteShard(path, txns, &error)) << error;
  const std::string good = ReadFileBytes(path);

  const auto rewrite = [&](const std::string& bytes) {
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  };

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  rewrite(bad_magic);
  EXPECT_EQ(ShardFile::Open(path, &error), nullptr);

  std::string bad_version = good;
  bad_version[8] = 99;  // format_version little-endian low byte
  rewrite(bad_version);
  EXPECT_EQ(ShardFile::Open(path, &error), nullptr);
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  rewrite(good.substr(0, good.size() / 2));
  EXPECT_EQ(ShardFile::Open(path, &error), nullptr);

  rewrite("");
  EXPECT_EQ(ShardFile::Open(path, &error), nullptr);

  std::remove(path.c_str());
  EXPECT_EQ(ShardFile::Open(path, &error), nullptr);  // missing file
}

TEST(ShardStoreTest, ListShardFilesSortsAndRejectsEmpty) {
  const std::string dir = TempPath("listdir");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  std::string error;
  std::vector<std::string> paths;
  EXPECT_FALSE(ListShardFiles(dir, &paths, &error));  // empty dir is an error

  // Create out of creation order; listing must come back sorted by name.
  for (const std::size_t i : {2, 0, 1}) {
    std::ofstream(dir + "/" + ShardFileName(i)) << "x";
  }
  std::ofstream(dir + "/notes.txt") << "ignored";  // non-matching suffix
  ASSERT_TRUE(ListShardFiles(dir, &paths, &error)) << error;
  ASSERT_EQ(paths.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NE(paths[i].find(ShardFileName(i)), std::string::npos);
  }
  for (const std::size_t i : {0, 1, 2}) {
    std::remove((dir + "/" + ShardFileName(i)).c_str());
  }
  std::remove((dir + "/notes.txt").c_str());
  ::rmdir(dir.c_str());
}

/// Writes `txns` into `dir` as shards of `shard_size`, returns the dir.
std::string BuildShardDir(const std::string& name,
                          const std::vector<LabeledGraph>& txns,
                          std::size_t shard_size) {
  const std::string dir = TempPath(name);
  ::mkdir(dir.c_str(), 0755);
  std::string error;
  std::size_t shard = 0;
  for (std::size_t i = 0; i < txns.size(); i += shard_size) {
    ShardWriter writer(dir + "/" + ShardFileName(shard++));
    for (std::size_t j = i; j < std::min(i + shard_size, txns.size()); ++j) {
      writer.Add(txns[j]);
    }
    EXPECT_TRUE(writer.Finish(&error)) << error;
  }
  return dir;
}

void RemoveShardDir(const std::string& dir, std::size_t num_shards) {
  for (std::size_t i = 0; i < num_shards; ++i) {
    std::remove((dir + "/" + ShardFileName(i)).c_str());
  }
  ::rmdir(dir.c_str());
}

TEST(ShardStoreTest, ShardedSourceReadsGlobalTidsAcrossShards) {
  const auto txns = MakeTransactions(11, 600);
  const std::string dir = BuildShardDir("sharded-read", txns, 4);  // 4+4+3

  std::string error;
  ShardedTransactionSource::Options options;
  options.max_resident_shards = 1;  // force eviction between shards
  auto source = ShardedTransactionSource::Open(dir, options, &error);
  ASSERT_NE(source, nullptr) << error;
  EXPECT_EQ(source->num_transactions(), txns.size());
  EXPECT_EQ(source->num_shards(), 3u);
  EXPECT_EQ(source->ShardBase(2), 8u);
  EXPECT_EQ(source->ShardSize(2), 3u);

  TransactionSource::Reader reader(*source);
  for (std::uint32_t tid = 0; tid < txns.size(); ++tid) {
    ExpectSameGraph(GraphView(txns[tid]), reader.View(tid));
  }
  // A second pass in descending order re-pins each shard once more.
  for (std::uint32_t tid = txns.size(); tid-- > 0;) {
    EXPECT_EQ(reader.View(tid).num_vertices(), txns[tid].num_vertices());
  }
  RemoveShardDir(dir, 3);
}

TEST(ShardStoreTest, ShardedSourceFingerprintIsStableAcrossOpens) {
  const auto txns = MakeTransactions(9, 700);
  const std::string dir = BuildShardDir("sharded-fp", txns, 3);
  std::string error;
  const ShardedTransactionSource::Options options;
  auto a = ShardedTransactionSource::Open(dir, options, &error);
  ASSERT_NE(a, nullptr) << error;
  auto b = ShardedTransactionSource::Open(dir, options, &error);
  ASSERT_NE(b, nullptr) << error;
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
  EXPECT_NE(a->fingerprint(), 0u);
  RemoveShardDir(dir, 3);
}

TEST(ShardStoreTest, LruKeepsResidencyBounded) {
  const auto txns = MakeTransactions(12, 800);
  const std::string dir = BuildShardDir("sharded-lru", txns, 3);  // 4 shards

  std::string error;
  ShardedTransactionSource::Options options;
  options.max_resident_shards = 2;
  auto source = ShardedTransactionSource::Open(dir, options, &error);
  ASSERT_NE(source, nullptr) << error;
  EXPECT_EQ(source->resident_bytes(), 0u);  // nothing mapped before a pin

  std::uint64_t one_shard = 0;
  {
    const ShardRef ref = source->Pin(0);
    EXPECT_EQ(ref.base, 0u);
    EXPECT_EQ(ref.views.size(), 3u);
    one_shard = source->resident_bytes();
    EXPECT_GT(one_shard, 0u);
  }
  // Touch every shard; with capacity 2 the cache never holds more than
  // two mappings once the pins are dropped.
  for (std::size_t s = 0; s < source->num_shards(); ++s) source->Pin(s);
  EXPECT_LE(source->resident_bytes(), 2 * (one_shard + one_shard / 2));
  // Re-pinning a cached shard is a hit: residency does not grow.
  const std::uint64_t before = source->resident_bytes();
  source->Pin(source->num_shards() - 1);
  EXPECT_EQ(source->resident_bytes(), before);
  RemoveShardDir(dir, 4);
}

TEST(ShardStoreTest, BudgetCeilingMakesPinThrow) {
  const auto txns = MakeTransactions(6, 900);
  const std::string dir = BuildShardDir("sharded-budget", txns, 3);

  std::string error;
  common::BudgetLimits limits;
  limits.max_memory_bytes = 64;  // smaller than any mapping
  ShardedTransactionSource::Options options;
  options.budget = common::ResourceBudget(limits);
  auto source = ShardedTransactionSource::Open(dir, options, &error);
  ASSERT_NE(source, nullptr) << error;
  EXPECT_THROW(source->Pin(0), std::bad_alloc);
  // The final failed charge trips the sticky memory outcome the miners
  // turn into a kMemoryBudgetExceeded partial result.
  EXPECT_EQ(options.budget.StopReason(),
            common::MiningOutcome::kMemoryBudgetExceeded);
  RemoveShardDir(dir, 2);
}

TEST(ShardStoreTest, EvictionReleasesBudgetCharges) {
  const auto txns = MakeTransactions(12, 1000);
  const std::string dir = BuildShardDir("sharded-release", txns, 3);

  std::string error;
  common::BudgetLimits limits;
  limits.max_memory_bytes = 64 << 20;  // roomy: charges must still balance
  ShardedTransactionSource::Options options;
  options.max_resident_shards = 1;
  options.budget = common::ResourceBudget(limits);
  auto source = ShardedTransactionSource::Open(dir, options, &error);
  ASSERT_NE(source, nullptr) << error;

  for (std::size_t s = 0; s < source->num_shards(); ++s) source->Pin(s);
  // Only the one cached shard's charge may remain outstanding.
  EXPECT_EQ(options.budget.memory_charged(), source->resident_bytes());
  EXPECT_EQ(options.budget.StopReason(), common::MiningOutcome::kComplete);

  source.reset();  // dropping the source returns every charge
  EXPECT_EQ(options.budget.memory_charged(), 0u);
  RemoveShardDir(dir, 4);
}

TEST(InMemoryTransactionSourceTest, ShardSizeCutsMatchSingleShard) {
  const auto txns = MakeTransactions(7, 1100);
  std::vector<GraphView> views;
  for (const LabeledGraph& g : txns) views.emplace_back(g);

  InMemoryTransactionSource whole(views);
  EXPECT_EQ(whole.num_shards(), 1u);
  EXPECT_EQ(whole.num_transactions(), txns.size());

  InMemoryTransactionSource cut(views, /*shard_size=*/3);  // 3+3+1
  EXPECT_EQ(cut.num_shards(), 3u);
  EXPECT_EQ(cut.ShardBase(1), 3u);
  EXPECT_EQ(cut.ShardSize(2), 1u);

  TransactionSource::Reader a(whole);
  TransactionSource::Reader b(cut);
  for (std::uint32_t tid = 0; tid < txns.size(); ++tid) {
    ExpectSameGraph(a.View(tid), b.View(tid));
  }
}

}  // namespace
}  // namespace tnmine::graph
