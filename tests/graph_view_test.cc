// Property test: GraphView must be a faithful flat-memory snapshot of any
// LabeledGraph — including graphs with tombstoned (removed) edges, which
// the CSR arrays must compact away while every original id keeps meaning.
// Each check compares the view against the source graph's own answers, so
// a divergence pinpoints the broken encoding.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "graph/graph_view.h"
#include "graph/labeled_graph.h"

namespace tnmine::graph {
namespace {

/// Random multigraph (parallel edges, self-loops, few labels so types
/// collide) with roughly a third of its edges tombstoned afterwards.
LabeledGraph GenGraphWithTombstones(Rng& rng) {
  LabeledGraph g;
  const std::size_t nv = rng.NextBounded(15);
  for (std::size_t v = 0; v < nv; ++v) {
    g.AddVertex(static_cast<Label>(rng.NextInt(-3, 4)));
  }
  if (nv == 0) return g;
  const std::size_t ne = rng.NextBounded(41);
  for (std::size_t e = 0; e < ne; ++e) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(nv)),
              static_cast<VertexId>(rng.NextBounded(nv)),
              static_cast<Label>(rng.NextInt(0, 3)));
  }
  for (const EdgeId e : g.LiveEdges()) {
    if (rng.NextBool(0.3)) g.RemoveEdge(e);
  }
  return g;
}

std::vector<EdgeId> AsVector(std::span<const EdgeId> span) {
  return {span.begin(), span.end()};
}

void ExpectViewMatchesGraph(const GraphView& view, const LabeledGraph& g) {
  ASSERT_EQ(view.num_vertices(), g.num_vertices());
  ASSERT_EQ(view.num_edges(), g.num_edges());
  ASSERT_EQ(view.edge_capacity(), g.edge_capacity());
  EXPECT_TRUE(view.CheckConsistent());

  const std::vector<EdgeId> live = g.LiveEdges();
  const std::set<EdgeId> live_set(live.begin(), live.end());
  for (EdgeId e = 0; e < g.edge_capacity(); ++e) {
    EXPECT_EQ(view.edge_alive(e), live_set.contains(e)) << "edge " << e;
    if (!live_set.contains(e)) continue;
    EXPECT_EQ(view.edge(e).src, g.edge(e).src);
    EXPECT_EQ(view.edge(e).dst, g.edge(e).dst);
    EXPECT_EQ(view.edge(e).label, g.edge(e).label);
  }

  std::map<Label, std::vector<VertexId>> by_label;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(view.vertex_label(v), g.vertex_label(v)) << "vertex " << v;
    by_label[g.vertex_label(v)].push_back(v);

    EXPECT_EQ(view.OutDegree(v), g.OutDegree(v)) << "vertex " << v;
    EXPECT_EQ(view.InDegree(v), g.InDegree(v)) << "vertex " << v;

    // Id encoding: exactly the ForEach visit sequence.
    std::vector<EdgeId> expected_out;
    g.ForEachOutEdge(v, [&](EdgeId e) { expected_out.push_back(e); });
    EXPECT_EQ(AsVector(view.OutEdgesById(v)), expected_out) << "v " << v;
    std::vector<EdgeId> expected_in;
    g.ForEachInEdge(v, [&](EdgeId e) { expected_in.push_back(e); });
    EXPECT_EQ(AsVector(view.InEdgesById(v)), expected_in) << "v " << v;

    // Arc encoding: sorted by (label, other, edge) and the same edge
    // multiset as the id encoding.
    const auto arcs = view.OutArcs(v);
    std::set<EdgeId> arc_edges;
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      const GraphView::Arc& a = arcs[i];
      EXPECT_EQ(a.other, g.edge(a.edge).dst);
      EXPECT_EQ(a.label, g.edge(a.edge).label);
      EXPECT_EQ(g.edge(a.edge).src, v);
      arc_edges.insert(a.edge);
      if (i > 0) {
        EXPECT_LE(std::make_tuple(arcs[i - 1].label, arcs[i - 1].other,
                                  arcs[i - 1].edge),
                  std::make_tuple(a.label, a.other, a.edge));
      }
    }
    EXPECT_EQ(arc_edges,
              std::set<EdgeId>(expected_out.begin(), expected_out.end()));

    // Label subrange and pair counting, for every label that occurs.
    for (const GraphView::Arc& a : arcs) {
      const auto range = view.OutArcs(v, a.label);
      std::size_t expected_range = 0;
      std::size_t expected_pairs = 0;
      g.ForEachOutEdge(v, [&](EdgeId e) {
        if (g.edge(e).label != a.label) return;
        ++expected_range;
        if (g.edge(e).dst == a.other) ++expected_pairs;
      });
      EXPECT_EQ(range.size(), expected_range);
      EXPECT_EQ(view.CountOutEdges(v, a.other, a.label), expected_pairs);
    }
    EXPECT_TRUE(view.OutArcs(v, Label{99}).empty());
    EXPECT_EQ(view.CountOutEdges(v, 0, Label{99}), 0u);
  }

  // Vertex-label index.
  std::vector<Label> expected_labels;
  for (const auto& [label, ids] : by_label) expected_labels.push_back(label);
  const auto distinct = view.DistinctVertexLabels();
  EXPECT_EQ(std::vector<Label>(distinct.begin(), distinct.end()),
            expected_labels);
  for (const auto& [label, ids] : by_label) {
    const auto got = view.VerticesWithLabel(label);
    EXPECT_EQ(std::vector<VertexId>(got.begin(), got.end()), ids);
  }
  EXPECT_TRUE(view.VerticesWithLabel(Label{99}).empty());

  // Edge-type index: strictly ascending keys whose edge lists partition
  // the live edges, each edge under its own type.
  std::set<EdgeId> typed;
  for (std::size_t i = 0; i < view.NumEdgeTypes(); ++i) {
    const GraphView::EdgeTypeKey& key = view.EdgeTypeAt(i);
    if (i > 0) EXPECT_LT(view.EdgeTypeAt(i - 1), key);
    EdgeId prev = 0;
    bool first = true;
    for (const EdgeId e : view.EdgesOfType(i)) {
      EXPECT_TRUE(first || e > prev);  // ascending EdgeId within a type
      first = false;
      prev = e;
      const Edge& edge = g.edge(e);
      EXPECT_EQ(key.src_label, g.vertex_label(edge.src));
      EXPECT_EQ(key.dst_label, g.vertex_label(edge.dst));
      EXPECT_EQ(key.edge_label, edge.label);
      EXPECT_EQ(key.self_loop, edge.src == edge.dst);
      EXPECT_TRUE(typed.insert(e).second) << "edge in two types";
    }
  }
  EXPECT_EQ(typed, live_set);
}

TEST(GraphViewPropertyTest, MatchesLabeledGraphOnRandomTombstonedGraphs) {
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    Rng rng(seed);
    const LabeledGraph g = GenGraphWithTombstones(rng);
    const GraphView view(g);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectViewMatchesGraph(view, g);
  }
}

TEST(GraphViewTest, SnapshotIsDecoupledFromSourceMutations) {
  Rng rng(77);
  LabeledGraph g = GenGraphWithTombstones(rng);
  while (g.num_vertices() < 2) g.AddVertex(1);
  const GraphView view(g);
  const std::size_t edges_before = view.num_edges();
  const std::size_t capacity_before = view.edge_capacity();
  g.AddEdge(0, 1, 5);
  if (!g.LiveEdges().empty()) g.RemoveEdge(g.LiveEdges().front());
  EXPECT_EQ(view.num_edges(), edges_before);
  EXPECT_EQ(view.edge_capacity(), capacity_before);
  EXPECT_TRUE(view.CheckConsistent());
}

TEST(GraphViewTest, EmptyGraph) {
  const LabeledGraph g;
  const GraphView view(g);
  EXPECT_EQ(view.num_vertices(), 0u);
  EXPECT_EQ(view.num_edges(), 0u);
  EXPECT_TRUE(view.DistinctVertexLabels().empty());
  EXPECT_EQ(view.NumEdgeTypes(), 0u);
  EXPECT_TRUE(view.CheckConsistent());
}

TEST(GraphViewTest, FullyTombstonedGraphHasEmptyAdjacency) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(1);
  const VertexId b = g.AddVertex(2);
  g.AddEdge(a, b, 3);
  g.AddEdge(b, a, 4);
  g.AddEdge(a, a, 5);
  for (const EdgeId e : g.LiveEdges()) g.RemoveEdge(e);
  const GraphView view(g);
  EXPECT_EQ(view.num_edges(), 0u);
  EXPECT_EQ(view.edge_capacity(), 3u);  // dead slots keep their ids
  EXPECT_EQ(view.OutDegree(a), 0u);
  EXPECT_EQ(view.InDegree(a), 0u);
  EXPECT_EQ(view.NumEdgeTypes(), 0u);
  EXPECT_TRUE(view.CheckConsistent());
}

}  // namespace
}  // namespace tnmine::graph
