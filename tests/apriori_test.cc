#include "ml/apriori.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tnmine::ml {
namespace {

/// Weather-style toy table with a deterministic rule: heavy -> TL.
AttributeTable ModeTable() {
  AttributeTable t;
  t.AddNominalAttribute("WEIGHT", {"light", "heavy"});
  t.AddNominalAttribute("MODE", {"TL", "LTL"});
  t.AddNominalAttribute("REGION", {"east", "west"});
  // 6 heavy TL east, 2 heavy TL west, 1 heavy LTL east,
  // 5 light LTL east, 4 light LTL west, 2 light TL west.
  for (int i = 0; i < 6; ++i) t.AddRow({1, 0, 0});
  for (int i = 0; i < 2; ++i) t.AddRow({1, 0, 1});
  t.AddRow({1, 1, 0});
  for (int i = 0; i < 5; ++i) t.AddRow({0, 1, 0});
  for (int i = 0; i < 4; ++i) t.AddRow({0, 1, 1});
  for (int i = 0; i < 2; ++i) t.AddRow({0, 0, 1});
  return t;
}

TEST(AprioriTest, FindsWeightToModeRule) {
  const AttributeTable t = ModeTable();
  AprioriOptions options;
  options.min_support = 0.2;
  options.min_confidence = 0.8;
  const AprioriResult r = MineAssociationRules(t, options);
  ASSERT_FALSE(r.rules.empty());
  bool found = false;
  for (const AssociationRule& rule : r.rules) {
    if (rule.lhs.size() == 1 && rule.lhs[0].attribute == 0 &&
        rule.lhs[0].value == 1 && rule.rhs[0].attribute == 1 &&
        rule.rhs[0].value == 0) {
      found = true;
      EXPECT_NEAR(rule.confidence, 8.0 / 9.0, 1e-12);
      EXPECT_NEAR(rule.support, 8.0 / 20.0, 1e-12);
      EXPECT_GT(rule.lift, 1.5);  // TL base rate is 10/20
      EXPECT_GT(rule.leverage, 0.0);
      EXPECT_GT(rule.conviction, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AprioriTest, MinSupportFilters) {
  const AttributeTable t = ModeTable();
  AprioriOptions options;
  options.min_support = 0.95;  // nothing is that common
  const AprioriResult r = MineAssociationRules(t, options);
  EXPECT_TRUE(r.frequent_itemsets.empty());
  EXPECT_TRUE(r.rules.empty());
}

TEST(AprioriTest, SupportCountsAreExact) {
  const AttributeTable t = ModeTable();
  AprioriOptions options;
  options.min_support = 0.1;
  options.min_confidence = 0.0;
  const AprioriResult r = MineAssociationRules(t, options);
  for (const ItemSet& s : r.frequent_itemsets) {
    // Recount by scan.
    std::size_t count = 0;
    for (std::size_t row = 0; row < t.num_rows(); ++row) {
      bool match = true;
      for (const Item& item : s.items) {
        if (static_cast<int>(t.value(row, item.attribute)) != item.value) {
          match = false;
        }
      }
      count += match;
    }
    EXPECT_EQ(s.count, count);
    EXPECT_GE(s.count, static_cast<std::size_t>(2));  // 0.1 * 20
    // At most one item per attribute.
    for (std::size_t i = 1; i < s.items.size(); ++i) {
      EXPECT_LT(s.items[i - 1].attribute, s.items[i].attribute);
    }
  }
}

TEST(AprioriTest, RulesSortedByConfidence) {
  const AttributeTable t = ModeTable();
  AprioriOptions options;
  options.min_support = 0.1;
  options.min_confidence = 0.5;
  const AprioriResult r = MineAssociationRules(t, options);
  for (std::size_t i = 1; i < r.rules.size(); ++i) {
    EXPECT_GE(r.rules[i - 1].confidence, r.rules[i].confidence);
  }
}

TEST(AprioriTest, MaxRulesTruncates) {
  const AttributeTable t = ModeTable();
  AprioriOptions options;
  options.min_support = 0.1;
  options.min_confidence = 0.3;
  options.max_rules = 3;
  const AprioriResult r = MineAssociationRules(t, options);
  EXPECT_LE(r.rules.size(), 3u);
}

TEST(AprioriTest, PerfectConfidenceGivesInfiniteConviction) {
  AttributeTable t;
  t.AddNominalAttribute("A", {"x", "y"});
  t.AddNominalAttribute("B", {"p", "q"});
  for (int i = 0; i < 5; ++i) t.AddRow({0, 0});
  for (int i = 0; i < 5; ++i) t.AddRow({1, 1});
  AprioriOptions options;
  options.min_support = 0.3;
  options.min_confidence = 0.9;
  const AprioriResult r = MineAssociationRules(t, options);
  ASSERT_FALSE(r.rules.empty());
  EXPECT_TRUE(std::isinf(r.rules.front().conviction));
  EXPECT_DOUBLE_EQ(r.rules.front().confidence, 1.0);
}

TEST(AprioriTest, RuleToStringReadable) {
  const AttributeTable t = ModeTable();
  AprioriOptions options;
  options.min_support = 0.2;
  options.min_confidence = 0.8;
  const AprioriResult r = MineAssociationRules(t, options);
  ASSERT_FALSE(r.rules.empty());
  const std::string text = RuleToString(t, r.rules.front());
  EXPECT_NE(text.find("->"), std::string::npos);
  EXPECT_NE(text.find("conf"), std::string::npos);
}

}  // namespace
}  // namespace tnmine::ml
