#include "data/geo.h"

#include <gtest/gtest.h>

namespace tnmine::data {
namespace {

TEST(GeoTest, RoundToDeciDegree) {
  EXPECT_DOUBLE_EQ(RoundToDeciDegree(44.512), 44.5);
  EXPECT_DOUBLE_EQ(RoundToDeciDegree(44.55), 44.6);
  EXPECT_DOUBLE_EQ(RoundToDeciDegree(-88.049), -88.0);
  EXPECT_DOUBLE_EQ(RoundToDeciDegree(-88.06), -88.1);
}

TEST(GeoTest, LocationKeyRoundTrip) {
  const double cases[][2] = {
      {44.5, -88.0}, {21.3, -157.9}, {49.0, -67.0}, {24.6, -124.4}};
  for (const auto& c : cases) {
    const LocationKey key = MakeLocationKey(c[0], c[1]);
    double lat = 0, lon = 0;
    LocationFromKey(key, &lat, &lon);
    EXPECT_DOUBLE_EQ(lat, c[0]);
    EXPECT_DOUBLE_EQ(lon, c[1]);
  }
}

TEST(GeoTest, NearbyPointsCoalesceToSameKey) {
  // Paper: "points within a few miles are coalesced to the same vertex".
  EXPECT_EQ(MakeLocationKey(44.51, -88.02), MakeLocationKey(44.54, -87.98));
  EXPECT_NE(MakeLocationKey(44.5, -88.0), MakeLocationKey(44.6, -88.0));
  EXPECT_NE(MakeLocationKey(44.5, -88.0), MakeLocationKey(44.5, -88.1));
}

TEST(GeoTest, DistinctLocationsDistinctKeys) {
  // Latitude/longitude must not alias across the packing boundary.
  EXPECT_NE(MakeLocationKey(40.0, -100.0), MakeLocationKey(41.0, -100.0));
  EXPECT_NE(MakeLocationKey(40.0, -100.0), MakeLocationKey(40.0, -99.0));
  EXPECT_NE(MakeLocationKey(20.0, -155.0), MakeLocationKey(45.0, -90.0));
}

TEST(GeoTest, HaversineKnownDistances) {
  // Green Bay, WI to Lafayette, IN: ~222 miles great circle.
  EXPECT_NEAR(HaversineMiles(44.5, -88.0, 40.4, -86.9), 290.0, 10.0);
  // Seattle to Honolulu: ~2677 miles.
  EXPECT_NEAR(HaversineMiles(47.6, -122.3, 21.3, -157.9), 2677.0, 30.0);
  // Zero distance.
  EXPECT_DOUBLE_EQ(HaversineMiles(40.0, -90.0, 40.0, -90.0), 0.0);
}

TEST(GeoTest, HaversineSymmetric) {
  const double a = HaversineMiles(40.4, -86.9, 33.7, -84.4);
  const double b = HaversineMiles(33.7, -84.4, 40.4, -86.9);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

}  // namespace
}  // namespace tnmine::data
