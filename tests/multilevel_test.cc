#include "partition/multilevel.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/random.h"
#include "graph/algorithms.h"

namespace tnmine::partition {
namespace {

using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

/// Two dense clusters joined by a single bridge edge — the canonical
/// easy-cut instance.
LabeledGraph TwoClusters(std::size_t cluster_size, std::uint64_t seed) {
  Rng rng(seed);
  LabeledGraph g;
  for (std::size_t i = 0; i < 2 * cluster_size; ++i) g.AddVertex(0);
  auto dense = [&](std::size_t base) {
    for (std::size_t i = 0; i < cluster_size; ++i) {
      for (int k = 0; k < 3; ++k) {
        const std::size_t j = rng.NextBounded(cluster_size);
        if (i != j) {
          g.AddEdge(static_cast<VertexId>(base + i),
                    static_cast<VertexId>(base + j), 1);
        }
      }
    }
  };
  dense(0);
  dense(cluster_size);
  g.AddEdge(0, static_cast<VertexId>(cluster_size), 9);  // bridge
  return g;
}

TEST(MultilevelTest, SinglePartitionIsTrivial) {
  const LabeledGraph g = TwoClusters(20, 1);
  MultilevelOptions options;
  options.num_partitions = 1;
  const MultilevelResult r = MultilevelPartition(g, options);
  EXPECT_EQ(r.cut_edges, 0u);
  for (std::uint32_t p : r.assignment) EXPECT_EQ(p, 0u);
}

TEST(MultilevelTest, FindsTheObviousCut) {
  const LabeledGraph g = TwoClusters(40, 2);
  MultilevelOptions options;
  options.num_partitions = 2;
  options.seed = 3;
  const MultilevelResult r = MultilevelPartition(g, options);
  // The ideal cut is the single bridge; accept a small constant.
  EXPECT_LE(r.cut_edges, 4u);
  // Balance: each side within the slack of half the vertices.
  std::size_t side0 = 0;
  for (std::uint32_t p : r.assignment) side0 += (p == 0);
  EXPECT_GT(side0, g.num_vertices() / 4);
  EXPECT_LT(side0, 3 * g.num_vertices() / 4);
}

TEST(MultilevelTest, AssignmentCoversAllVerticesAndParts) {
  Rng rng(5);
  LabeledGraph g;
  for (int i = 0; i < 200; ++i) g.AddVertex(0);
  for (int i = 0; i < 600; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.NextBounded(200)),
              static_cast<VertexId>(rng.NextBounded(200)), 1);
  }
  MultilevelOptions options;
  options.num_partitions = 8;
  const MultilevelResult r = MultilevelPartition(g, options);
  ASSERT_EQ(r.assignment.size(), g.num_vertices());
  std::vector<std::size_t> sizes(8, 0);
  for (std::uint32_t p : r.assignment) {
    ASSERT_LT(p, 8u);
    ++sizes[p];
  }
  // Balance cap: no partition above (1 + slack) * n/k (+1 rounding).
  for (std::size_t s : sizes) {
    EXPECT_LE(s, static_cast<std::size_t>(1.1 * 200.0 / 8.0) + 2);
  }
}

TEST(MultilevelTest, CutCountMatchesAssignment) {
  const LabeledGraph g = TwoClusters(25, 7);
  MultilevelOptions options;
  options.num_partitions = 4;
  const MultilevelResult r = MultilevelPartition(g, options);
  std::size_t expected_cut = 0;
  g.ForEachEdge([&](graph::EdgeId e) {
    const auto& edge = g.edge(e);
    if (r.assignment[edge.src] != r.assignment[edge.dst]) ++expected_cut;
  });
  EXPECT_EQ(r.cut_edges, expected_cut);
}

TEST(MultilevelTest, ExtractPartitionsDropsCutEdges) {
  const LabeledGraph g = TwoClusters(15, 9);
  MultilevelOptions options;
  options.num_partitions = 2;
  const MultilevelResult r = MultilevelPartition(g, options);
  const auto parts = ExtractPartitions(g, r.assignment);
  std::size_t kept = 0;
  for (const auto& part : parts) {
    kept += part.num_edges();
    for (VertexId v = 0; v < part.num_vertices(); ++v) {
      EXPECT_GT(part.Degree(v), 0u);
    }
  }
  EXPECT_EQ(kept + r.cut_edges, g.num_edges());
}

TEST(MultilevelTest, Deterministic) {
  const LabeledGraph g = TwoClusters(30, 11);
  MultilevelOptions options;
  options.num_partitions = 3;
  options.seed = 13;
  const MultilevelResult a = MultilevelPartition(g, options);
  const MultilevelResult b = MultilevelPartition(g, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
}

}  // namespace
}  // namespace tnmine::partition
