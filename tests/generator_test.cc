#include "data/generator.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/date.h"
#include "data/geo.h"

namespace tnmine::data {
namespace {

TEST(GeneratorTest, SmallScaleExactCardinalities) {
  const GeneratorConfig config = GeneratorConfig::SmallScale();
  const TransactionDataset ds = GenerateTransportData(config);
  const DatasetStats stats = ds.ComputeStats();
  EXPECT_EQ(stats.num_transactions, config.num_transactions);
  EXPECT_EQ(stats.distinct_od_pairs, config.num_od_pairs);
  EXPECT_EQ(stats.distinct_locations, config.num_locations);
  EXPECT_EQ(stats.distinct_origins, config.num_origins);
  EXPECT_EQ(stats.distinct_destinations, config.num_destinations);
}

TEST(GeneratorTest, Deterministic) {
  const GeneratorConfig config = GeneratorConfig::SmallScale();
  const TransactionDataset a = GenerateTransportData(config);
  const TransactionDataset b = GenerateTransportData(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].req_pickup_day, b[i].req_pickup_day);
    EXPECT_DOUBLE_EQ(a[i].gross_weight, b[i].gross_weight);
    EXPECT_DOUBLE_EQ(a[i].total_distance, b[i].total_distance);
  }
}

TEST(GeneratorTest, SeedsDiffer) {
  GeneratorConfig config = GeneratorConfig::SmallScale();
  const TransactionDataset a = GenerateTransportData(config);
  config.seed = 999;
  const TransactionDataset b = GenerateTransportData(config);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size() && !any_different; ++i) {
    any_different = a[i].gross_weight != b[i].gross_weight;
  }
  EXPECT_TRUE(any_different);
}

TEST(GeneratorTest, DegreeExtremesMatchConfig) {
  const GeneratorConfig config = GeneratorConfig::SmallScale();
  const TransactionDataset ds = GenerateTransportData(config);
  // Deduplicated OD graph degrees.
  std::unordered_map<LocationKey, std::unordered_set<LocationKey>> out_nbrs;
  std::unordered_map<LocationKey, std::unordered_set<LocationKey>> in_nbrs;
  for (const Transaction& t : ds.transactions()) {
    const LocationKey o = TransactionDataset::OriginKey(t);
    const LocationKey d = TransactionDataset::DestKey(t);
    out_nbrs[o].insert(d);
    in_nbrs[d].insert(o);
  }
  std::size_t max_out = 0, min_out = ~std::size_t{0};
  for (const auto& [k, nbrs] : out_nbrs) {
    max_out = std::max(max_out, nbrs.size());
    min_out = std::min(min_out, nbrs.size());
  }
  std::size_t max_in = 0, min_in = ~std::size_t{0};
  for (const auto& [k, nbrs] : in_nbrs) {
    max_in = std::max(max_in, nbrs.size());
    min_in = std::min(min_in, nbrs.size());
  }
  EXPECT_EQ(max_out, config.hub_out_degree);
  EXPECT_EQ(max_in, config.hub_in_degree);
  EXPECT_EQ(min_out, 1u);
  EXPECT_EQ(min_in, 1u);
}

TEST(GeneratorTest, DatesWithinConfiguredWindow) {
  const GeneratorConfig config = GeneratorConfig::SmallScale();
  const TransactionDataset ds = GenerateTransportData(config);
  const std::int64_t start = DayNumberFromCivil(
      {config.start_year, config.start_month, config.start_day_of_month});
  const std::int64_t end = start + static_cast<std::int64_t>(config.num_days);
  for (const Transaction& t : ds.transactions()) {
    EXPECT_GE(t.req_pickup_day, start);
    EXPECT_LT(t.req_pickup_day, end);
    EXPECT_GE(t.req_delivery_day, t.req_pickup_day);
    EXPECT_LT(t.req_delivery_day, end + 30);  // bounded slack
  }
}

TEST(GeneratorTest, PhysicalFieldsSane) {
  const TransactionDataset ds =
      GenerateTransportData(GeneratorConfig::SmallScale());
  for (const Transaction& t : ds.transactions()) {
    EXPECT_GT(t.total_distance, 0.0);
    EXPECT_LT(t.total_distance, 6000.0);
    EXPECT_GE(t.gross_weight, 40.0);
    EXPECT_LE(t.gross_weight, 1.0e6);
    EXPECT_GE(t.transit_hours, 1.0);
    // Coordinates quantized to 0.1 degree.
    EXPECT_DOUBLE_EQ(t.origin_latitude,
                     RoundToDeciDegree(t.origin_latitude));
    EXPECT_DOUBLE_EQ(t.dest_longitude,
                     RoundToDeciDegree(t.dest_longitude));
  }
}

TEST(GeneratorTest, AirFreightOutliersPresent) {
  const GeneratorConfig config = GeneratorConfig::SmallScale();
  const TransactionDataset ds = GenerateTransportData(config);
  std::size_t air_count = 0;
  for (const Transaction& t : ds.transactions()) {
    if (t.dest_latitude < 24.0) {  // Hawaii
      ++air_count;
      EXPECT_GT(t.total_distance, 2800.0);
      EXPECT_LT(t.transit_hours, 24.0);
      EXPECT_GT(t.origin_latitude, 45.0);  // Pacific Northwest origin
    }
  }
  EXPECT_GE(air_count, config.num_air_freight);
  EXPECT_LE(air_count, config.num_air_freight + 2);
}

TEST(GeneratorTest, WeightModeDependence) {
  const TransactionDataset ds =
      GenerateTransportData(GeneratorConfig::SmallScale());
  std::size_t heavy_tl = 0, heavy = 0, light_ltl = 0, light = 0;
  for (const Transaction& t : ds.transactions()) {
    if (t.gross_weight > 10000.0) {
      ++heavy;
      heavy_tl += t.mode == TransMode::kTruckload;
    } else {
      ++light;
      light_ltl += t.mode == TransMode::kLessThanTruckload;
    }
  }
  ASSERT_GT(heavy, 0u);
  ASSERT_GT(light, 0u);
  // ~96 % consistency (4 % configured noise).
  EXPECT_GT(static_cast<double>(heavy_tl) / heavy, 0.90);
  EXPECT_GT(static_cast<double>(light_ltl) / light, 0.90);
}

TEST(GeneratorTest, ScheduledRoutesRepeatWeekly) {
  const GeneratorConfig config = GeneratorConfig::SmallScale();
  const TransactionDataset ds = GenerateTransportData(config);
  // Group transactions by OD pair; look for pairs with >= 5 occurrences
  // whose day-of-week is stable — the planted weekly schedules.
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> by_pair;
  for (const Transaction& t : ds.transactions()) {
    const std::uint64_t key =
        static_cast<std::uint64_t>(TransactionDataset::OriginKey(t)) *
            0x9E3779B97F4A7C15ULL ^
        static_cast<std::uint64_t>(TransactionDataset::DestKey(t));
    by_pair[key].push_back(t.req_pickup_day);
  }
  std::size_t weekly_pairs = 0;
  for (auto& [key, days] : by_pair) {
    if (days.size() < 5) continue;
    std::unordered_map<int, std::size_t> dow_counts;
    for (std::int64_t d : days) ++dow_counts[DayOfWeek(d)];
    std::size_t dominant = 0;
    for (const auto& [dow, c] : dow_counts) dominant = std::max(dominant, c);
    if (static_cast<double>(dominant) / days.size() >= 0.7) ++weekly_pairs;
  }
  EXPECT_GE(weekly_pairs, 10u);
}

TEST(GeneratorTest, HeavyOutliersStretchWeightRange) {
  const GeneratorConfig config = GeneratorConfig::SmallScale();
  const TransactionDataset ds = GenerateTransportData(config);
  const DatasetStats stats = ds.ComputeStats();
  EXPECT_GT(stats.weight.max, 7.5e5);  // near the 500-ton range
}

// Paper-scale generation is the expensive path; verify cardinalities once.
TEST(GeneratorTest, PaperScaleMatchesSection3) {
  const TransactionDataset ds =
      GenerateTransportData(GeneratorConfig::PaperScale());
  const DatasetStats stats = ds.ComputeStats();
  EXPECT_EQ(stats.num_transactions, 98292u);
  EXPECT_EQ(stats.distinct_locations, 4038u);
  EXPECT_EQ(stats.distinct_origins, 1797u);
  EXPECT_EQ(stats.distinct_destinations, 3770u);
  EXPECT_EQ(stats.distinct_od_pairs, 20900u);
}

}  // namespace
}  // namespace tnmine::data
