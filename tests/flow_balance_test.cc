#include "core/flow_balance.h"

#include <gtest/gtest.h>

#include "data/generator.h"

namespace tnmine::core {
namespace {

using data::Transaction;
using data::TransactionDataset;

Transaction Txn(double olat, double olon, double dlat, double dlon) {
  Transaction t;
  t.origin_latitude = olat;
  t.origin_longitude = olon;
  t.dest_latitude = dlat;
  t.dest_longitude = dlon;
  t.req_pickup_day = 100;
  t.req_delivery_day = 101;
  t.gross_weight = 1000;
  t.total_distance = 100;
  t.transit_hours = 10;
  return t;
}

TEST(DeadheadTest, FindsOneWayLane) {
  TransactionDataset ds;
  // 20 loads A -> B, 1 back; plus a balanced lane C <-> D (12 each).
  for (int i = 0; i < 20; ++i) ds.Add(Txn(40.0, -90.0, 41.0, -91.0));
  ds.Add(Txn(41.0, -91.0, 40.0, -90.0));
  for (int i = 0; i < 12; ++i) ds.Add(Txn(30.0, -80.0, 31.0, -81.0));
  for (int i = 0; i < 12; ++i) ds.Add(Txn(31.0, -81.0, 30.0, -80.0));
  LaneBalanceOptions options;
  options.min_forward_shipments = 10;
  options.min_imbalance = 0.8;
  const auto lanes = FindDeadheadLanes(ds, options);
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].forward_shipments, 20u);
  EXPECT_EQ(lanes[0].backward_shipments, 1u);
  EXPECT_NEAR(lanes[0].imbalance, 19.0 / 21.0, 1e-12);
  EXPECT_NE(ToString(lanes[0]).find("20 out / 1 back"), std::string::npos);
}

TEST(DeadheadTest, ThresholdsFilter) {
  TransactionDataset ds;
  for (int i = 0; i < 5; ++i) ds.Add(Txn(40.0, -90.0, 41.0, -91.0));
  LaneBalanceOptions options;
  options.min_forward_shipments = 10;  // volume too low
  EXPECT_TRUE(FindDeadheadLanes(ds, options).empty());
  options.min_forward_shipments = 3;
  EXPECT_EQ(FindDeadheadLanes(ds, options).size(), 1u);
}

TEST(DeadheadTest, EachLaneReportedOnceHeavySideFirst) {
  TransactionDataset ds;
  for (int i = 0; i < 3; ++i) ds.Add(Txn(40.0, -90.0, 41.0, -91.0));
  for (int i = 0; i < 30; ++i) ds.Add(Txn(41.0, -91.0, 40.0, -90.0));
  LaneBalanceOptions options;
  options.min_forward_shipments = 10;
  options.min_imbalance = 0.5;
  const auto lanes = FindDeadheadLanes(ds, options);
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].forward_shipments, 30u);  // oriented heavy-side
  EXPECT_EQ(lanes[0].backward_shipments, 3u);
}

TEST(MarketFlowTest, NetSourceAndSink) {
  TransactionDataset ds;
  // A ships 25 loads out to B, receives none: A is a pure source, B a
  // pure sink.
  for (int i = 0; i < 25; ++i) ds.Add(Txn(40.0, -90.0, 41.0, -91.0));
  MarketFlowOptions options;
  options.min_shipments = 10;
  const auto markets = ComputeMarketFlows(ds, options);
  ASSERT_EQ(markets.size(), 2u);
  bool saw_source = false, saw_sink = false;
  for (const MarketFlow& m : markets) {
    if (m.net_flow > 0.99) {
      saw_source = true;
      EXPECT_EQ(m.outbound, 25u);
    }
    if (m.net_flow < -0.99) {
      saw_sink = true;
      EXPECT_EQ(m.inbound, 25u);
    }
  }
  EXPECT_TRUE(saw_source);
  EXPECT_TRUE(saw_sink);
}

TEST(MarketFlowTest, PaperScaleHubIsAMajorSource) {
  const auto ds =
      data::GenerateTransportData(data::GeneratorConfig::SmallScale());
  MarketFlowOptions options;
  options.min_shipments = 20;
  const auto markets = ComputeMarketFlows(ds, options);
  ASSERT_FALSE(markets.empty());
  // The generator's mega-hub origin ships far more than it receives: a
  // strong net source must exist among the top entries.
  bool found_source = false;
  for (const MarketFlow& m : markets) {
    if (m.net_flow > 0.9 && m.outbound > 100) found_source = true;
  }
  EXPECT_TRUE(found_source);
}

}  // namespace
}  // namespace tnmine::core
