#include "core/interestingness.h"

#include <gtest/gtest.h>

namespace tnmine::core {
namespace {

using graph::LabeledGraph;
using graph::VertexId;

pattern::FrequentPattern MakePattern(LabeledGraph g, std::size_t support) {
  pattern::FrequentPattern p;
  p.graph = std::move(g);
  p.support = support;
  return p;
}

LabeledGraph SingleEdge() {
  LabeledGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddEdge(0, 1, 1);
  return g;
}

LabeledGraph Cycle(int n, bool varied_labels) {
  LabeledGraph g;
  std::vector<VertexId> vs;
  for (int i = 0; i < n; ++i) vs.push_back(g.AddVertex(0));
  for (int i = 0; i < n; ++i) {
    g.AddEdge(vs[static_cast<std::size_t>(i)],
              vs[static_cast<std::size_t>((i + 1) % n)],
              varied_labels ? i : 1);
  }
  return g;
}

TEST(InterestingnessTest, EmptyPatternScoresZero) {
  LabeledGraph g;
  g.AddVertex(0);
  EXPECT_EQ(PatternInterestingness(MakePattern(g, 100)), 0.0);
}

TEST(InterestingnessTest, BiggerAndMoreFrequentScoresHigher) {
  const double small = PatternInterestingness(MakePattern(SingleEdge(), 10));
  const double frequent =
      PatternInterestingness(MakePattern(SingleEdge(), 100));
  EXPECT_GT(frequent, small);
  const double big =
      PatternInterestingness(MakePattern(Cycle(4, false), 10));
  EXPECT_GT(big, small);
}

TEST(InterestingnessTest, CycleBeatsEquallySupportedSingleEdge) {
  const double edge = PatternInterestingness(MakePattern(SingleEdge(), 50));
  const double cycle =
      PatternInterestingness(MakePattern(Cycle(3, false), 50));
  EXPECT_GT(cycle, edge);
}

TEST(InterestingnessTest, LabelDiversityHelps) {
  const double uniform =
      PatternInterestingness(MakePattern(Cycle(4, false), 20));
  const double varied =
      PatternInterestingness(MakePattern(Cycle(4, true), 20));
  EXPECT_GT(varied, uniform);
}

TEST(InterestingnessTest, RankPatternsOrdersByScore) {
  pattern::PatternRegistry reg;
  reg.InsertOrMerge(MakePattern(SingleEdge(), 500));
  reg.InsertOrMerge(MakePattern(Cycle(4, true), 60));
  reg.InsertOrMerge(MakePattern(Cycle(3, false), 5));
  const auto ranked = RankPatterns(reg);
  ASSERT_EQ(ranked.size(), 3u);
  double prev = PatternInterestingness(*ranked[0]);
  for (const auto* p : ranked) {
    const double score = PatternInterestingness(*p);
    EXPECT_LE(score, prev + 1e-12);
    prev = score;
  }
}

}  // namespace
}  // namespace tnmine::core
