// Golden-file round-trip tests: each I/O format has a checked-in exemplar
// under tests/golden/. For every format the test asserts that
//   1. serializing the fixed in-memory structure reproduces the golden
//      bytes exactly (writer stability), and
//   2. parsing the golden bytes reproduces the fixed structure (reader
//      correctness against a known-good artifact, independent of the
//      writer).
// Set TNMINE_REGEN_GOLDEN=1 to rewrite the golden files from the current
// writers after an intentional format change.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "graph/graph_io.h"
#include "graph/graph_view.h"
#include "graph/labeled_graph.h"
#include "ml/arff.h"
#include "ml/attribute_table.h"

namespace tnmine {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(TNMINE_GOLDEN_DIR) + "/" + name;
}

bool Regenerating() {
  const char* env = std::getenv("TNMINE_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with TNMINE_REGEN_GOLDEN=1 to create)";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFileOrDie(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << text;
}

// Checks writer stability against the golden bytes, or regenerates them.
void CheckOrRegen(const std::string& name, const std::string& serialized) {
  const std::string path = GoldenPath(name);
  if (Regenerating()) {
    WriteFileOrDie(path, serialized);
    return;
  }
  EXPECT_EQ(serialized, ReadFileOrDie(path)) << "writer output drifted from "
                                             << path;
}

// The fixed CSV dataset: exercises quoting, embedded separators, embedded
// newlines/CRs, and empty fields.
std::vector<std::vector<std::string>> CsvFixture() {
  return {
      {"id", "name", "note"},
      {"1", "plain", "no quoting needed"},
      {"2", "comma, inside", "quote \" inside"},
      {"3", "multi\nline", "carriage\rreturn"},
      {"4", "", "trailing empty next"},
      {""},
  };
}

TEST(GoldenTest, Csv) {
  const auto records = CsvFixture();
  const std::string path = GoldenPath("transactions.csv");
  if (Regenerating()) {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    for (const auto& rec : records) writer.WriteRecord(rec);
    return;
  }
  // Writer stability: re-serialize next to the golden file and compare.
  const std::string tmp = ::testing::TempDir() + "/golden_csv_rewrite.csv";
  {
    CsvWriter writer(tmp);
    ASSERT_TRUE(writer.ok());
    for (const auto& rec : records) writer.WriteRecord(rec);
  }
  EXPECT_EQ(ReadFileOrDie(tmp), ReadFileOrDie(path));
  std::remove(tmp.c_str());
  // Reader correctness straight off the golden artifact.
  CsvReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  std::vector<std::string> fields;
  for (std::size_t i = 0; i < records.size(); ++i) {
    ASSERT_TRUE(reader.ReadRecord(&fields)) << "record " << i << ": "
                                            << reader.error();
    EXPECT_EQ(fields, records[i]) << "record " << i;
  }
  EXPECT_FALSE(reader.ReadRecord(&fields));
  EXPECT_TRUE(reader.ok()) << reader.error();
}

graph::LabeledGraph GraphFixture() {
  graph::LabeledGraph g;
  const auto a = g.AddVertex(10);
  const auto b = g.AddVertex(20);
  const auto c = g.AddVertex(-3);
  g.AddEdge(a, b, 7);
  g.AddEdge(b, c, 0);
  g.AddEdge(c, a, 7);
  return g;
}

TEST(GoldenTest, NativeGraph) {
  const graph::LabeledGraph g = GraphFixture();
  const std::string text = graph::WriteNative(g);
  CheckOrRegen("graph.native", text);
  if (Regenerating()) return;
  graph::LabeledGraph back;
  ParseError err;
  ASSERT_TRUE(graph::ReadNative(ReadFileOrDie(GoldenPath("graph.native")),
                                &back, &err))
      << err.ToString();
  EXPECT_TRUE(g.StructurallyEqual(back));
  EXPECT_TRUE(graph::GraphView(back).CheckConsistent());
}

TEST(GoldenTest, SubdueGraph) {
  const graph::LabeledGraph g = GraphFixture();
  const std::string text = graph::WriteSubdueFormat(g);
  CheckOrRegen("graph.subdue", text);
  if (Regenerating()) return;
  graph::LabeledGraph back;
  ParseError err;
  ASSERT_TRUE(graph::ReadSubdueFormat(
      ReadFileOrDie(GoldenPath("graph.subdue")), &back, &err))
      << err.ToString();
  EXPECT_TRUE(g.StructurallyEqual(back));
  EXPECT_TRUE(graph::GraphView(back).CheckConsistent());
}

TEST(GoldenTest, FsgTransactions) {
  std::vector<graph::LabeledGraph> txns;
  txns.push_back(GraphFixture());
  {
    graph::LabeledGraph g;
    const auto v = g.AddVertex(1);
    g.AddEdge(v, v, 2);  // self-loop transaction
    txns.push_back(std::move(g));
  }
  txns.emplace_back();  // empty transaction
  const std::string text = graph::WriteFsgFormat(txns);
  CheckOrRegen("transactions.fsg", text);
  if (Regenerating()) return;
  std::vector<graph::LabeledGraph> back;
  ParseError err;
  ASSERT_TRUE(graph::ReadFsgFormat(
      ReadFileOrDie(GoldenPath("transactions.fsg")), &back, &err))
      << err.ToString();
  ASSERT_EQ(back.size(), txns.size());
  for (std::size_t i = 0; i < txns.size(); ++i) {
    EXPECT_TRUE(txns[i].StructurallyEqual(back[i])) << "txn " << i;
    EXPECT_TRUE(graph::GraphView(back[i]).CheckConsistent()) << "txn " << i;
  }
}

ml::AttributeTable ArffFixture() {
  ml::AttributeTable table;
  table.AddNumericAttribute("distance");
  table.AddNominalAttribute("mode", {"TL", "LTL", "needs quoting, here"});
  table.AddNumericAttribute("weight");
  table.AddRow({6500.25, 0, 0.1});
  table.AddRow({-12.0, 1, 1.0 / 3.0});
  table.AddRow({1e-5, 2, 40000.0});
  return table;
}

TEST(GoldenTest, Arff) {
  const ml::AttributeTable table = ArffFixture();
  const std::string text = ml::WriteArff(table, "tnmine_golden");
  CheckOrRegen("table.arff", text);
  if (Regenerating()) return;
  ml::AttributeTable back;
  ParseError err;
  ASSERT_TRUE(ml::ReadArff(ReadFileOrDie(GoldenPath("table.arff")), &back,
                           &err))
      << err.ToString();
  ASSERT_EQ(back.num_rows(), table.num_rows());
  ASSERT_EQ(back.num_attributes(), table.num_attributes());
  for (int a = 0; a < table.num_attributes(); ++a) {
    EXPECT_EQ(back.attribute(a).name, table.attribute(a).name);
    EXPECT_EQ(back.attribute(a).kind, table.attribute(a).kind);
    EXPECT_EQ(back.attribute(a).values, table.attribute(a).values);
  }
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (int a = 0; a < table.num_attributes(); ++a) {
      EXPECT_EQ(back.value(r, a), table.value(r, a))
          << "cell (" << r << ", " << a << ")";
    }
  }
}

}  // namespace
}  // namespace tnmine
