#include "graph/labeled_graph.h"

#include <gtest/gtest.h>

#include <vector>

namespace tnmine::graph {
namespace {

TEST(LabeledGraphTest, EmptyGraph) {
  LabeledGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.IsDense());
}

TEST(LabeledGraphTest, AddVerticesAndEdges) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(1);
  const VertexId b = g.AddVertex(2);
  const VertexId c = g.AddVertex(1);
  const EdgeId e0 = g.AddEdge(a, b, 10);
  const EdgeId e1 = g.AddEdge(b, c, 20);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.vertex_label(a), 1);
  EXPECT_EQ(g.vertex_label(b), 2);
  EXPECT_EQ(g.edge(e0).src, a);
  EXPECT_EQ(g.edge(e0).dst, b);
  EXPECT_EQ(g.edge(e0).label, 10);
  EXPECT_EQ(g.edge(e1).label, 20);
  EXPECT_EQ(g.OutDegree(a), 1u);
  EXPECT_EQ(g.InDegree(b), 1u);
  EXPECT_EQ(g.OutDegree(b), 1u);
  EXPECT_EQ(g.Degree(b), 2u);
}

TEST(LabeledGraphTest, ParallelEdgesAllowed) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  g.AddEdge(a, b, 1);
  g.AddEdge(a, b, 1);
  g.AddEdge(a, b, 2);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutDegree(a), 3u);
  EXPECT_EQ(g.InDegree(b), 3u);
}

TEST(LabeledGraphTest, SelfLoop) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(0);
  g.AddEdge(a, a, 5);
  EXPECT_EQ(g.OutDegree(a), 1u);
  EXPECT_EQ(g.InDegree(a), 1u);
  EXPECT_EQ(g.Degree(a), 2u);
}

TEST(LabeledGraphTest, RemoveEdgeUpdatesEverything) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  const EdgeId e0 = g.AddEdge(a, b, 1);
  const EdgeId e1 = g.AddEdge(b, a, 2);
  g.RemoveEdge(e0);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.edge_alive(e0));
  EXPECT_TRUE(g.edge_alive(e1));
  EXPECT_EQ(g.OutDegree(a), 0u);
  EXPECT_EQ(g.InDegree(b), 0u);
  EXPECT_FALSE(g.IsDense());
  int visited = 0;
  g.ForEachOutEdge(a, [&](EdgeId) { ++visited; });
  EXPECT_EQ(visited, 0);
  g.ForEachEdge([&](EdgeId e) { EXPECT_EQ(e, e1); ++visited; });
  EXPECT_EQ(visited, 1);
}

TEST(LabeledGraphTest, LiveEdgesSkipsTombstones) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(0);
  const VertexId b = g.AddVertex(0);
  const EdgeId e0 = g.AddEdge(a, b, 1);
  const EdgeId e1 = g.AddEdge(a, b, 2);
  const EdgeId e2 = g.AddEdge(a, b, 3);
  g.RemoveEdge(e1);
  EXPECT_EQ(g.LiveEdges(), (std::vector<EdgeId>{e0, e2}));
}

TEST(LabeledGraphTest, CompactDropsTombstonesAndIsolated) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(10);
  const VertexId b = g.AddVertex(20);
  const VertexId c = g.AddVertex(30);  // becomes isolated
  const EdgeId e0 = g.AddEdge(a, b, 1);
  const EdgeId e1 = g.AddEdge(b, c, 2);
  (void)e0;
  g.RemoveEdge(e1);
  std::vector<VertexId> map;
  const LabeledGraph dense = g.Compact(/*drop_isolated_vertices=*/true, &map);
  EXPECT_EQ(dense.num_vertices(), 2u);
  EXPECT_EQ(dense.num_edges(), 1u);
  EXPECT_TRUE(dense.IsDense());
  EXPECT_EQ(map[c], kInvalidVertex);
  EXPECT_EQ(dense.vertex_label(map[a]), 10);
  EXPECT_EQ(dense.vertex_label(map[b]), 20);
}

TEST(LabeledGraphTest, CompactKeepIsolated) {
  LabeledGraph g;
  g.AddVertex(10);
  g.AddVertex(20);
  const LabeledGraph dense = g.Compact(/*drop_isolated_vertices=*/false);
  EXPECT_EQ(dense.num_vertices(), 2u);
}

TEST(LabeledGraphTest, DistinctLabelCounts) {
  LabeledGraph g;
  const VertexId a = g.AddVertex(1);
  const VertexId b = g.AddVertex(1);
  const VertexId c = g.AddVertex(2);
  g.AddEdge(a, b, 5);
  const EdgeId dup = g.AddEdge(b, c, 5);
  g.AddEdge(c, a, 6);
  EXPECT_EQ(g.CountDistinctVertexLabels(), 2u);
  EXPECT_EQ(g.CountDistinctEdgeLabels(), 2u);
  g.RemoveEdge(dup);
  EXPECT_EQ(g.CountDistinctEdgeLabels(), 2u);
}

TEST(LabeledGraphTest, StructurallyEqual) {
  auto build = [](Label extra) {
    LabeledGraph g;
    const VertexId a = g.AddVertex(1);
    const VertexId b = g.AddVertex(2);
    g.AddEdge(a, b, extra);
    return g;
  };
  EXPECT_TRUE(build(7).StructurallyEqual(build(7)));
  EXPECT_FALSE(build(7).StructurallyEqual(build(8)));
}

TEST(LabeledGraphTest, StructurallyEqualIgnoresTombstones) {
  LabeledGraph a;
  const VertexId x = a.AddVertex(0);
  const VertexId y = a.AddVertex(0);
  a.AddEdge(x, y, 1);
  LabeledGraph b = a;
  const EdgeId extra = b.AddEdge(x, y, 9);
  b.RemoveEdge(extra);
  EXPECT_TRUE(a.StructurallyEqual(b));
}

}  // namespace
}  // namespace tnmine::graph
