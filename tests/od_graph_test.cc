#include "data/od_graph.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "data/generator.h"
#include "graph/algorithms.h"

namespace tnmine::data {
namespace {

TransactionDataset SmallData() {
  return GenerateTransportData(GeneratorConfig::SmallScale());
}

TEST(OdGraphTest, EmptyDataset) {
  const OdGraph g = BuildOdGraph(TransactionDataset{}, OdGraphOptions{});
  EXPECT_EQ(g.graph.num_vertices(), 0u);
  EXPECT_EQ(g.graph.num_edges(), 0u);
}

TEST(OdGraphTest, OneEdgePerTransactionOneVertexPerLocation) {
  const TransactionDataset ds = SmallData();
  const DatasetStats stats = ds.ComputeStats();
  const OdGraph g = BuildOdGw(ds);
  EXPECT_EQ(g.graph.num_edges(), ds.size());
  EXPECT_EQ(g.graph.num_vertices(), stats.distinct_locations);
  EXPECT_EQ(g.edge_transaction.size(), ds.size());
  EXPECT_EQ(g.vertex_location.size(), g.graph.num_vertices());
}

TEST(OdGraphTest, UniformLabelingGivesOneVertexLabel) {
  const OdGraph g = BuildOdGw(SmallData(), VertexLabeling::kUniform);
  EXPECT_EQ(g.graph.CountDistinctVertexLabels(), 1u);
}

TEST(OdGraphTest, ByLocationLabelingGivesUniqueLabels) {
  const OdGraph g = BuildOdGw(SmallData(), VertexLabeling::kByLocation);
  EXPECT_EQ(g.graph.CountDistinctVertexLabels(), g.graph.num_vertices());
}

TEST(OdGraphTest, EdgeLabelsWithinBinRange) {
  const TransactionDataset ds = SmallData();
  for (auto attr : {EdgeAttribute::kGrossWeight,
                    EdgeAttribute::kMoveTransitHours,
                    EdgeAttribute::kTotalDistance}) {
    OdGraphOptions options;
    options.attribute = attr;
    options.num_bins = attr == EdgeAttribute::kGrossWeight ? 7 : 10;
    const OdGraph g = BuildOdGraph(ds, options);
    g.graph.ForEachEdge([&](graph::EdgeId e) {
      const graph::Label label = g.graph.edge(e).label;
      EXPECT_GE(label, 0);
      EXPECT_LT(label, g.discretizer.num_bins());
    });
    EXPECT_LE(g.graph.CountDistinctEdgeLabels(),
              static_cast<std::size_t>(options.num_bins));
  }
}

TEST(OdGraphTest, EdgeLabelsMatchDiscretizedAttribute) {
  const TransactionDataset ds = SmallData();
  const OdGraph g = BuildOdTh(ds);
  g.graph.ForEachEdge([&](graph::EdgeId e) {
    const Transaction& t = ds[g.edge_transaction[e]];
    EXPECT_EQ(g.graph.edge(e).label,
              g.discretizer.Bin(t.transit_hours));
    // Endpoints map back to the transaction's locations.
    EXPECT_EQ(g.vertex_location[g.graph.edge(e).src],
              TransactionDataset::OriginKey(t));
    EXPECT_EQ(g.vertex_location[g.graph.edge(e).dst],
              TransactionDataset::DestKey(t));
  });
}

TEST(OdGraphTest, ThreeVariantsShareStructure) {
  const TransactionDataset ds = SmallData();
  const OdGraph gw = BuildOdGw(ds);
  const OdGraph th = BuildOdTh(ds);
  const OdGraph td = BuildOdTd(ds);
  EXPECT_EQ(gw.graph.num_vertices(), th.graph.num_vertices());
  EXPECT_EQ(th.graph.num_vertices(), td.graph.num_vertices());
  EXPECT_EQ(gw.graph.num_edges(), th.graph.num_edges());
  // Same topology: corresponding edges connect the same vertices.
  gw.graph.ForEachEdge([&](graph::EdgeId e) {
    EXPECT_EQ(gw.graph.edge(e).src, th.graph.edge(e).src);
    EXPECT_EQ(gw.graph.edge(e).dst, td.graph.edge(e).dst);
  });
}

TEST(OdGraphTest, DegreeStatsFlowThrough) {
  const GeneratorConfig config = GeneratorConfig::SmallScale();
  const TransactionDataset ds = GenerateTransportData(config);
  OdGraph g = BuildOdGw(ds);
  // Deduplicate to the distinct-OD-pair graph the paper reports degrees on.
  graph::DeduplicateEdges(&g.graph);
  // After dedup by (src, dst, label), parallel edges with different labels
  // may remain; collapse to pure pair-distinctness for the check.
  std::unordered_set<std::uint64_t> pairs;
  std::size_t max_out = 0;
  for (graph::VertexId v = 0; v < g.graph.num_vertices(); ++v) {
    std::unordered_set<graph::VertexId> nbrs;
    g.graph.ForEachOutEdge(v, [&](graph::EdgeId e) {
      nbrs.insert(g.graph.edge(e).dst);
    });
    max_out = std::max(max_out, nbrs.size());
  }
  EXPECT_EQ(max_out, config.hub_out_degree);
}

TEST(OdGraphTest, OdGraphNames) {
  EXPECT_STREQ(OdGraphName(EdgeAttribute::kGrossWeight), "OD_GW");
  EXPECT_STREQ(OdGraphName(EdgeAttribute::kMoveTransitHours), "OD_TH");
  EXPECT_STREQ(OdGraphName(EdgeAttribute::kTotalDistance), "OD_TD");
}

}  // namespace
}  // namespace tnmine::data
