// Determinism contract of the parallel mining core: for any thread count,
// gSpan, FSG and the Algorithm-1 repetition driver must return exactly
// what the single-threaded run returns — same patterns, same order, same
// graphs, supports and tids — and the canonical-code cache must never
// change an answer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/scratch.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "core/miner.h"
#include "fsg/fsg.h"
#include "graph/graph_view.h"
#include "gspan/gspan.h"
#include "iso/canonical.h"
#include "iso/vf2.h"
#include "pattern/tid_set.h"
#include "synth/kk_generator.h"
#include "synth/planted.h"

namespace tnmine {
namespace {

using pattern::FrequentPattern;

/// Seeded paper-style transaction set (the KK generator the paper's
/// footnote-3 experiments use).
std::vector<graph::LabeledGraph> TestTransactions(std::uint64_t seed) {
  synth::KkOptions options;
  options.num_transactions = 80;
  options.avg_transaction_edges = 14;
  options.num_seed_patterns = 8;
  options.avg_pattern_edges = 3;
  options.num_vertex_labels = 6;
  options.num_edge_labels = 3;
  options.seed = seed;
  return synth::GenerateKkTransactions(options).transactions;
}

void ExpectIdenticalPatternLists(const std::vector<FrequentPattern>& a,
                                 const std::vector<FrequentPattern>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].code, b[i].code) << "index " << i;
    EXPECT_EQ(a[i].support, b[i].support) << "index " << i;
    EXPECT_EQ(a[i].tids, b[i].tids) << "index " << i;
    EXPECT_TRUE(a[i].graph.StructurallyEqual(b[i].graph)) << "index " << i;
  }
}

class ParallelGspanTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelGspanTest, ParallelEqualsSequentialExactly) {
  const auto txns = TestTransactions(GetParam());
  gspan::GspanOptions options;
  options.min_support = 4;
  options.max_edges = 4;
  options.parallelism = common::Parallelism::Serial();
  const gspan::GspanResult sequential = gspan::MineGspan(txns, options);
  ASSERT_FALSE(sequential.patterns.empty());

  for (std::size_t threads : {2u, 4u, 7u}) {
    options.parallelism = common::Parallelism{threads};
    const gspan::GspanResult parallel = gspan::MineGspan(txns, options);
    ExpectIdenticalPatternLists(sequential.patterns, parallel.patterns);
    EXPECT_EQ(sequential.patterns_explored, parallel.patterns_explored);
    EXPECT_EQ(sequential.max_level, parallel.max_level);
  }
}

class ParallelFsgTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelFsgTest, ParallelEqualsSequentialExactly) {
  const auto txns = TestTransactions(GetParam());
  fsg::FsgOptions options;
  options.min_support = 4;
  options.max_edges = 3;
  options.parallelism = common::Parallelism::Serial();
  const fsg::FsgResult sequential = fsg::MineFsg(txns, options);
  ASSERT_FALSE(sequential.patterns.empty());

  for (std::size_t threads : {2u, 4u, 7u}) {
    options.parallelism = common::Parallelism{threads};
    const fsg::FsgResult parallel = fsg::MineFsg(txns, options);
    ExpectIdenticalPatternLists(sequential.patterns, parallel.patterns);
    EXPECT_EQ(sequential.levels_completed, parallel.levels_completed);
    EXPECT_EQ(sequential.candidates_per_level,
              parallel.candidates_per_level);
    EXPECT_EQ(sequential.frequent_per_level, parallel.frequent_per_level);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelGspanTest,
                         ::testing::Values(301, 302, 303));
INSTANTIATE_TEST_SUITE_P(Seeds, ParallelFsgTest,
                         ::testing::Values(301, 302, 303));

// The TID-set encoding is an implementation detail: forcing every set
// sparse or every set bitmap must mine byte-identical patterns — same
// order, codes, supports, tid lists — at 1, 2 and 4 threads, with the
// same tick ledger (DESIGN.md §12).
class FsgEncodingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FsgEncodingTest, BitmapAndSparseMineIdenticalPatternsAtAnyThreads) {
  const auto txns = TestTransactions(GetParam());
  fsg::FsgOptions options;
  options.min_support = 4;
  options.max_edges = 3;

  std::vector<fsg::FsgResult> results;
  for (const pattern::TidSet::EncodingPolicy policy :
       {pattern::TidSet::EncodingPolicy::kForceSparse,
        pattern::TidSet::EncodingPolicy::kForceBitmap}) {
    const pattern::TidSet::ScopedEncodingPolicy scoped(policy);
    for (const std::size_t threads : {1u, 2u, 4u}) {
      options.parallelism = threads == 1 ? common::Parallelism::Serial()
                                         : common::Parallelism{threads};
      results.push_back(fsg::MineFsg(txns, options));
    }
  }
  ASSERT_FALSE(results.front().patterns.empty());
  for (std::size_t i = 1; i < results.size(); ++i) {
    ExpectIdenticalPatternLists(results.front().patterns,
                                results[i].patterns);
    EXPECT_EQ(results.front().work_ticks, results[i].work_ticks);
    EXPECT_EQ(results.front().frequent_per_level,
              results[i].frequent_per_level);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsgEncodingTest,
                         ::testing::Values(311, 312));

TEST(ParallelStructuralMiningTest, ParallelRepetitionsEqualSequential) {
  synth::PlantedOptions planted;
  planted.num_patterns = 4;
  planted.pattern_edges = 3;
  planted.instances_per_pattern = 30;
  planted.noise_vertices = 50;
  planted.noise_edges = 100;
  planted.seed = 17;
  const synth::PlantedResult data = synth::GeneratePlantedGraph(planted);

  core::StructuralMiningOptions options;
  options.num_partitions = 30;
  options.repetitions = 4;
  options.min_support = 10;
  options.max_pattern_edges = 3;
  options.seed = 5;
  options.parallelism = common::Parallelism::Serial();
  const auto sequential = core::MineStructuralPatterns(data.graph, options);
  options.parallelism = common::Parallelism{4};
  const auto parallel = core::MineStructuralPatterns(data.graph, options);

  EXPECT_EQ(sequential.partitions_per_repetition,
            parallel.partitions_per_repetition);
  EXPECT_EQ(sequential.patterns_per_repetition,
            parallel.patterns_per_repetition);
  ASSERT_EQ(sequential.registry.size(), parallel.registry.size());
  const auto seq_sorted = sequential.registry.SortedBySupport();
  const auto par_sorted = parallel.registry.SortedBySupport();
  for (std::size_t i = 0; i < seq_sorted.size(); ++i) {
    EXPECT_EQ(seq_sorted[i]->code, par_sorted[i]->code);
    EXPECT_EQ(seq_sorted[i]->support, par_sorted[i]->support);
  }
}

// The flat-memory VF2 kernel under concurrency: many lanes matching
// against shared GraphView snapshots (each lane with its own matcher —
// matchers hold per-run state) must produce the sequential counts.
TEST(ParallelVf2Test, SharedViewsMatchSequentialCounts) {
  const auto txns = TestTransactions(404);
  gspan::GspanOptions mine;
  mine.min_support = 4;
  mine.max_edges = 2;
  mine.parallelism = common::Parallelism::Serial();
  std::vector<graph::LabeledGraph> patterns;
  for (const auto& p : gspan::MineGspan(txns, mine).patterns) {
    if (p.graph.num_edges() == 2) patterns.push_back(p.graph);
  }
  ASSERT_FALSE(patterns.empty());

  std::vector<graph::GraphView> views;
  views.reserve(txns.size());
  for (const auto& t : txns) views.emplace_back(t);

  std::vector<std::uint64_t> sequential(patterns.size() * views.size());
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    iso::SubgraphMatcher matcher(patterns[p]);
    for (std::size_t t = 0; t < views.size(); ++t) {
      sequential[p * views.size() + t] = matcher.CountEmbeddings(views[t]);
    }
  }
  for (std::size_t threads : {2u, 4u}) {
    const std::vector<std::uint64_t> parallel =
        common::ParallelMap<std::uint64_t>(
            common::Parallelism{threads}, sequential.size(),
            [&](std::size_t i) {
              iso::SubgraphMatcher matcher(patterns[i / views.size()]);
              return matcher.CountEmbeddings(views[i % views.size()]);
            });
    EXPECT_EQ(parallel, sequential) << threads << " threads";
  }
}

/// Deltas of the snapshot/scratch telemetry across one mining run. Unlike
/// threadpool/*, these are part of the determinism contract (DESIGN.md
/// §9): graphview/* and scratch/acquires must not depend on the thread
/// count. (scratch/reuse_hits and scratch/fresh_allocs DO depend on which
/// thread ran what, and are deliberately absent here.)
std::vector<std::uint64_t> KernelCounterDeltas(std::size_t threads) {
  static const char* kNames[] = {"graphview/views_built",
                                 "graphview/vertices_snapshot",
                                 "graphview/edges_snapshot"};
  const auto txns = TestTransactions(505);
  const auto before = telemetry::Registry::Global().Snapshot().counters;
  const common::ScratchStats scratch_before = common::GetScratchStats();
  fsg::FsgOptions fsg_options;
  fsg_options.min_support = 4;
  fsg_options.max_edges = 3;
  fsg_options.parallelism = common::Parallelism{threads};
  (void)fsg::MineFsg(txns, fsg_options);
  gspan::GspanOptions gspan_options;
  gspan_options.min_support = 4;
  gspan_options.max_edges = 3;
  gspan_options.parallelism = common::Parallelism{threads};
  iso::ClearCanonicalCodeCache();  // cache state must not leak across runs
  (void)gspan::MineGspan(txns, gspan_options);
  const auto after = telemetry::Registry::Global().Snapshot().counters;
  std::vector<std::uint64_t> deltas;
  for (const char* name : kNames) {
    const auto get = [](const std::map<std::string, std::uint64_t>& m,
                        const char* key) {
      const auto it = m.find(key);
      return it == m.end() ? std::uint64_t{0} : it->second;
    };
    deltas.push_back(get(after, name) - get(before, name));
  }
  deltas.push_back(common::GetScratchStats().acquires -
                   scratch_before.acquires);
  return deltas;
}

TEST(KernelTelemetryTest, SnapshotAndScratchCountersAreScheduleIndependent) {
  iso::ClearCanonicalCodeCache();
  const auto serial = KernelCounterDeltas(1);
  EXPECT_EQ(KernelCounterDeltas(2), serial);
  EXPECT_EQ(KernelCounterDeltas(4), serial);
}

TEST(CanonicalCodeCacheTest, CachedCodeMatchesUncachedOnRepeatedLookups) {
  iso::ClearCanonicalCodeCache();
  const auto txns = TestTransactions(909);
  for (const auto& g : txns) {
    const std::string expected = iso::CanonicalCode(g);
    EXPECT_EQ(iso::CanonicalCodeCached(g), expected);  // miss
    EXPECT_EQ(iso::CanonicalCodeCached(g), expected);  // hit
  }
  const auto stats = iso::GetCanonicalCacheStats();
  EXPECT_GE(stats.hits, txns.size());
  EXPECT_GE(stats.misses, 1u);
}

TEST(CanonicalCodeCacheTest, ConcurrentLookupsAreConsistent) {
  iso::ClearCanonicalCodeCache();
  const auto txns = TestTransactions(910);
  std::vector<std::string> expected;
  expected.reserve(txns.size());
  for (const auto& g : txns) expected.push_back(iso::CanonicalCode(g));
  // Hammer the cache from many lanes, repeatedly visiting each graph.
  constexpr std::size_t kRounds = 8;
  const std::vector<std::string> got =
      common::ParallelMap<std::string>(
          common::Parallelism{8}, txns.size() * kRounds,
          [&](std::size_t i) {
            return iso::CanonicalCodeCached(txns[i % txns.size()]);
          });
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i % txns.size()]);
  }
}

TEST(CanonicalCodeCacheTest, ClearResetsStats) {
  iso::ClearCanonicalCodeCache();
  const auto stats = iso::GetCanonicalCacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

}  // namespace
}  // namespace tnmine
