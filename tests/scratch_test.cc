// Unit tests for the per-thread scratch-buffer pool, plus the steady-state
// allocation-freedom contract the flat-memory kernels rely on: once a
// thread has warmed its pool, repeating an identical matcher workload must
// acquire only pooled scratch (zero fresh allocations) — and the acquire
// count itself must be a deterministic function of the workload.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/scratch.h"
#include "graph/graph_view.h"
#include "graph/labeled_graph.h"
#include "iso/vf2.h"

namespace tnmine {
namespace {

using common::GetScratchStats;
using common::ScratchLease;
using common::ScratchStats;

struct CountingBuf {
  std::vector<int> data;
  int resets = 0;
  void Reset() {
    ++resets;
    data.clear();  // clear() keeps capacity — the point of pooling
  }
};

TEST(ScratchLeaseTest, ReturnsSameObjectWithCapacityKept) {
  const ScratchStats before = GetScratchStats();
  const CountingBuf* first = nullptr;
  {
    ScratchLease<CountingBuf> lease;
    first = lease.get();
    lease->data.resize(1000);
  }
  {
    ScratchLease<CountingBuf> lease;
    EXPECT_EQ(lease.get(), first);       // pooled, not reallocated
    EXPECT_TRUE(lease->data.empty());    // Reset ran on reacquire
    EXPECT_GE(lease->data.capacity(), 1000u);
    EXPECT_EQ(lease->resets, 2);         // once per acquire
  }
  const ScratchStats after = GetScratchStats();
  EXPECT_EQ(after.acquires - before.acquires, 2u);
  EXPECT_EQ(after.fresh_allocs - before.fresh_allocs, 1u);
  EXPECT_EQ(after.reuse_hits - before.reuse_hits, 1u);
}

TEST(ScratchLeaseTest, NestedLeasesGetDistinctObjects) {
  struct NestedBuf {
    int value = 0;
    void Reset() { value = 0; }
  };
  ScratchLease<NestedBuf> outer;
  outer->value = 1;
  {
    ScratchLease<NestedBuf> inner;
    EXPECT_NE(inner.get(), outer.get());
    inner->value = 2;
  }
  EXPECT_EQ(outer->value, 1);  // inner's release didn't touch outer
}

/// Fixed little multigraph zoo: enough structure for real VF2 search work
/// (parallel edges, self-loops, shared labels).
std::vector<graph::LabeledGraph> Transactions() {
  std::vector<graph::LabeledGraph> txns;
  for (int variant = 0; variant < 6; ++variant) {
    graph::LabeledGraph g;
    std::vector<graph::VertexId> vs;
    for (int v = 0; v < 6; ++v) vs.push_back(g.AddVertex(v % 3));
    for (int e = 0; e < 10; ++e) {
      const auto src = vs[(e * 7 + variant) % vs.size()];
      const auto dst = vs[(e * 5 + 2 * variant + 1) % vs.size()];
      g.AddEdge(src, dst, e % 2);
    }
    g.AddEdge(vs[0], vs[0], 1);  // self-loop
    txns.push_back(std::move(g));
  }
  return txns;
}

graph::LabeledGraph Pattern() {
  graph::LabeledGraph p;
  const auto a = p.AddVertex(0);
  const auto b = p.AddVertex(1);
  const auto c = p.AddVertex(2);
  p.AddEdge(a, b, 0);
  p.AddEdge(b, c, 1);
  return p;
}

TEST(ScratchSteadyStateTest, WarmMatcherWorkloadIsAllocationFree) {
  const std::vector<graph::LabeledGraph> txns = Transactions();
  std::vector<graph::GraphView> views;
  views.reserve(txns.size());
  for (const auto& t : txns) views.emplace_back(t);
  const graph::LabeledGraph pattern = Pattern();

  auto run = [&] {
    std::uint64_t total = 0;
    iso::SubgraphMatcher matcher(pattern);
    for (const auto& v : views) total += matcher.CountEmbeddings(v);
    return total;
  };

  const std::uint64_t warm = run();  // warms this thread's pool
  const ScratchStats before = GetScratchStats();
  const std::uint64_t again = run();
  const ScratchStats after = GetScratchStats();

  EXPECT_EQ(again, warm);
  // Steady state: every acquire is a pool hit, nothing freshly allocated.
  EXPECT_EQ(after.fresh_allocs - before.fresh_allocs, 0u);
  // One scratch acquire per ForEachEmbedding run — a deterministic
  // function of the workload, independent of scheduling.
  EXPECT_EQ(after.acquires - before.acquires, views.size());
  EXPECT_EQ(after.reuse_hits - before.reuse_hits, views.size());
}

TEST(ScratchStatsTest, CountersAreConsistent) {
  const ScratchStats stats = GetScratchStats();
  EXPECT_EQ(stats.acquires, stats.reuse_hits + stats.fresh_allocs);
}

}  // namespace
}  // namespace tnmine
