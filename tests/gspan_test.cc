#include "gspan/gspan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "fsg/fsg.h"
#include "graph/algorithms.h"
#include "iso/canonical.h"
#include "iso/vf2.h"

namespace tnmine::gspan {
namespace {

using graph::Label;
using graph::LabeledGraph;
using graph::VertexId;

LabeledGraph Edge1(Label a, Label b, Label e) {
  LabeledGraph g;
  const VertexId va = g.AddVertex(a);
  const VertexId vb = g.AddVertex(b);
  g.AddEdge(va, vb, e);
  return g;
}

LabeledGraph Chain(int edges, Label v, Label e) {
  LabeledGraph g;
  VertexId prev = g.AddVertex(v);
  for (int i = 0; i < edges; ++i) {
    const VertexId next = g.AddVertex(v);
    g.AddEdge(prev, next, e);
    prev = next;
  }
  return g;
}

std::vector<LabeledGraph> RandomTransactions(std::uint64_t seed,
                                             std::size_t count,
                                             std::size_t vertices,
                                             std::size_t edges, int vlabels,
                                             int elabels) {
  Rng rng(seed);
  std::vector<LabeledGraph> txns;
  for (std::size_t t = 0; t < count; ++t) {
    LabeledGraph g;
    for (std::size_t i = 0; i < vertices; ++i) {
      g.AddVertex(static_cast<Label>(rng.NextBounded(vlabels)));
    }
    for (std::size_t i = 0; i < edges; ++i) {
      g.AddEdge(static_cast<VertexId>(rng.NextBounded(vertices)),
                static_cast<VertexId>(rng.NextBounded(vertices)),
                static_cast<Label>(rng.NextBounded(elabels)));
    }
    txns.push_back(std::move(g));
  }
  return txns;
}

TEST(GspanTest, EmptyInput) {
  GspanOptions options;
  options.min_support = 1;
  EXPECT_TRUE(MineGspan({}, options).patterns.empty());
}

TEST(GspanTest, SingleEdgeSupport) {
  std::vector<LabeledGraph> txns = {Edge1(0, 1, 5), Edge1(0, 1, 5),
                                    Edge1(2, 1, 5)};
  GspanOptions options;
  options.min_support = 2;
  const GspanResult r = MineGspan(txns, options);
  ASSERT_EQ(r.patterns.size(), 1u);
  EXPECT_EQ(r.patterns[0].support, 2u);
  EXPECT_EQ(r.patterns[0].tids.ToVector(), (std::vector<std::uint32_t>{0, 1}));
}

TEST(GspanTest, FindsChainsOfAllLengths) {
  std::vector<LabeledGraph> txns = {Chain(4, 0, 1), Chain(4, 0, 1),
                                    Chain(2, 0, 1)};
  GspanOptions options;
  options.min_support = 2;
  const GspanResult r = MineGspan(txns, options);
  // Chains of 1..4 edges are frequent (1- and 2-edge chains in all three).
  std::map<std::size_t, std::size_t> support_by_size;
  for (const auto& p : r.patterns) {
    if (p.graph.num_edges() > 0) {
      support_by_size[p.graph.num_edges()] =
          std::max(support_by_size[p.graph.num_edges()], p.support);
    }
  }
  EXPECT_EQ(support_by_size[1], 3u);
  EXPECT_EQ(support_by_size[2], 3u);
  EXPECT_EQ(support_by_size[3], 2u);
  EXPECT_EQ(support_by_size[4], 2u);
  EXPECT_EQ(support_by_size.count(5), 0u);
}

TEST(GspanTest, SupportsAreExactAgainstVf2) {
  const auto txns = RandomTransactions(13, 10, 5, 7, 2, 2);
  GspanOptions options;
  options.min_support = 3;
  options.max_edges = 3;
  const GspanResult r = MineGspan(txns, options);
  ASSERT_FALSE(r.patterns.empty());
  for (const auto& p : r.patterns) {
    std::size_t expect = 0;
    for (const auto& t : txns) {
      expect += iso::ContainsSubgraph(p.graph, t);
    }
    EXPECT_EQ(p.support, expect) << p.graph.DebugString();
    EXPECT_GE(p.support, options.min_support);
  }
}

TEST(GspanTest, MaxEdgesRespected) {
  std::vector<LabeledGraph> txns = {Chain(6, 0, 1), Chain(6, 0, 1)};
  GspanOptions options;
  options.min_support = 2;
  options.max_edges = 3;
  const GspanResult r = MineGspan(txns, options);
  for (const auto& p : r.patterns) {
    EXPECT_LE(p.graph.num_edges(), 3u);
  }
  EXPECT_EQ(r.max_level, 3u);
}

TEST(GspanTest, NoDuplicatePatternClasses) {
  const auto txns = RandomTransactions(17, 8, 6, 9, 2, 2);
  GspanOptions options;
  options.min_support = 2;
  options.max_edges = 4;
  const GspanResult r = MineGspan(txns, options);
  std::set<std::string> codes;
  for (const auto& p : r.patterns) {
    EXPECT_TRUE(codes.insert(p.code).second) << "duplicate " << p.code;
  }
}

// The headline property: FSG and gSpan produce identical pattern sets
// (same isomorphism classes, same supports) on the same input.
class MinerEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MinerEquivalenceTest, FsgAndGspanAgree) {
  const auto txns = RandomTransactions(GetParam(), 12, 6, 8, 2, 2);
  const std::size_t min_support = 3;

  fsg::FsgOptions fsg_options;
  fsg_options.min_support = min_support;
  fsg_options.max_edges = 4;
  const fsg::FsgResult fsg_result = fsg::MineFsg(txns, fsg_options);

  GspanOptions gspan_options;
  gspan_options.min_support = min_support;
  gspan_options.max_edges = 4;
  const GspanResult gspan_result = MineGspan(txns, gspan_options);

  std::map<std::string, std::size_t> fsg_map, gspan_map;
  for (const auto& p : fsg_result.patterns) fsg_map[p.code] = p.support;
  for (const auto& p : gspan_result.patterns) gspan_map[p.code] = p.support;
  EXPECT_EQ(fsg_map, gspan_map);
  EXPECT_FALSE(fsg_map.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinerEquivalenceTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

TEST(GspanTest, EmbeddingCapFlagsTruncation) {
  // A dense uniform blob creates many embeddings; a cap of 1 must flag.
  const auto txns = RandomTransactions(19, 4, 6, 14, 1, 1);
  GspanOptions options;
  options.min_support = 2;
  options.max_edges = 3;
  options.max_embeddings_per_transaction = 1;
  const GspanResult r = MineGspan(txns, options);
  EXPECT_TRUE(r.embeddings_truncated);
}

}  // namespace
}  // namespace tnmine::gspan
