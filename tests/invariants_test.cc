// Failure-injection tests: the library fails fast (TNMINE_CHECK) on
// programming errors instead of limping on with corrupt state. Death
// tests document the contracts.

#include <gtest/gtest.h>

#include "common/binning.h"
#include "data/generator.h"
#include "fsg/fsg.h"
#include "graph/labeled_graph.h"
#include "iso/canonical.h"
#include "ml/attribute_table.h"

namespace tnmine {
namespace {

using graph::LabeledGraph;

TEST(InvariantsDeathTest, AddEdgeRequiresExistingVertices) {
  LabeledGraph g;
  g.AddVertex(0);
  EXPECT_DEATH(g.AddEdge(0, 5, 1), "CHECK");
}

TEST(InvariantsDeathTest, RemoveEdgeTwice) {
  LabeledGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  const graph::EdgeId e = g.AddEdge(0, 1, 1);
  g.RemoveEdge(e);
  EXPECT_DEATH(g.RemoveEdge(e), "already removed");
}

TEST(InvariantsDeathTest, CutPointsMustAscend) {
  EXPECT_DEATH(Discretizer::FromCutPoints({3.0, 1.0}),
               "strictly ascending");
}

TEST(InvariantsDeathTest, FsgRejectsTombstonedTransactions) {
  LabeledGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  const graph::EdgeId e0 = g.AddEdge(0, 1, 1);
  g.AddEdge(1, 0, 1);
  g.RemoveEdge(e0);
  fsg::FsgOptions options;
  options.min_support = 1;
  EXPECT_DEATH(fsg::MineFsg({g}, options), "dense");
}

TEST(InvariantsDeathTest, GeneratorValidatesCardinalities) {
  data::GeneratorConfig config = data::GeneratorConfig::SmallScale();
  config.num_origins = 10;
  config.num_destinations = 10;  // 10 + 10 < 120 locations: uncovered
  EXPECT_DEATH(data::GenerateTransportData(config), "origin");
}

TEST(InvariantsDeathTest, CanonicalCodeSizeGuard) {
  LabeledGraph g;
  for (std::size_t i = 0; i < iso::kMaxCanonicalVertices + 1; ++i) {
    g.AddVertex(0);
  }
  EXPECT_DEATH(iso::CanonicalCode(g), "too large");
}

TEST(InvariantsDeathTest, NominalCellsValidated) {
  ml::AttributeTable t;
  t.AddNominalAttribute("m", {"a", "b"});
  EXPECT_DEATH(t.AddRow({7.0}), "invalid nominal");
}

TEST(InvariantsDeathTest, AttributesBeforeRows) {
  ml::AttributeTable t;
  t.AddNumericAttribute("x");
  t.AddRow({1.0});
  EXPECT_DEATH(t.AddNumericAttribute("y"), "before rows");
}

}  // namespace
}  // namespace tnmine
