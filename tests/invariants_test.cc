// Failure-injection tests: the library fails fast (TNMINE_CHECK) on
// programming errors instead of limping on with corrupt state. In
// default builds a failed check throws tnmine::CheckError (so hosts can
// flush partial results); under TNMINE_CHECK_ABORTS (sanitizer presets)
// it aborts, and these become death tests.

#include <gtest/gtest.h>

#include <string>

#include "common/binning.h"
#include "common/check.h"
#include "data/generator.h"
#include "fsg/fsg.h"
#include "graph/labeled_graph.h"
#include "iso/canonical.h"
#include "ml/attribute_table.h"

#if defined(TNMINE_CHECK_ABORTS)
#define EXPECT_CHECK_FAILURE(statement, pattern) \
  EXPECT_DEATH(statement, pattern)
#else
#define EXPECT_CHECK_FAILURE(statement, pattern)                        \
  do {                                                                  \
    try {                                                               \
      statement;                                                        \
      ADD_FAILURE() << "expected TNMINE_CHECK to fail";                 \
    } catch (const ::tnmine::CheckError& e) {                           \
      EXPECT_NE(std::string(e.what()).find(pattern), std::string::npos) \
          << "message was: " << e.what();                               \
      EXPECT_NE(e.line(), 0);                                           \
      EXPECT_FALSE(std::string(e.expression()).empty());                \
    }                                                                   \
  } while (0)
#endif

namespace tnmine {
namespace {

using graph::LabeledGraph;

TEST(InvariantsDeathTest, AddEdgeRequiresExistingVertices) {
  LabeledGraph g;
  g.AddVertex(0);
  EXPECT_CHECK_FAILURE(g.AddEdge(0, 5, 1), "CHECK");
}

TEST(InvariantsDeathTest, RemoveEdgeTwice) {
  LabeledGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  const graph::EdgeId e = g.AddEdge(0, 1, 1);
  g.RemoveEdge(e);
  EXPECT_CHECK_FAILURE(g.RemoveEdge(e), "already removed");
}

TEST(InvariantsDeathTest, CutPointsMustAscend) {
  EXPECT_CHECK_FAILURE(Discretizer::FromCutPoints({3.0, 1.0}),
                       "strictly ascending");
}

TEST(InvariantsDeathTest, FsgRejectsTombstonedTransactions) {
  LabeledGraph g;
  g.AddVertex(0);
  g.AddVertex(0);
  const graph::EdgeId e0 = g.AddEdge(0, 1, 1);
  g.AddEdge(1, 0, 1);
  g.RemoveEdge(e0);
  fsg::FsgOptions options;
  options.min_support = 1;
  EXPECT_CHECK_FAILURE(fsg::MineFsg({g}, options), "dense");
}

TEST(InvariantsDeathTest, GeneratorValidatesCardinalities) {
  data::GeneratorConfig config = data::GeneratorConfig::SmallScale();
  config.num_origins = 10;
  config.num_destinations = 10;  // 10 + 10 < 120 locations: uncovered
  EXPECT_CHECK_FAILURE(data::GenerateTransportData(config), "origin");
}

TEST(InvariantsDeathTest, CanonicalCodeSizeGuard) {
  LabeledGraph g;
  for (std::size_t i = 0; i < iso::kMaxCanonicalVertices + 1; ++i) {
    g.AddVertex(0);
  }
  EXPECT_CHECK_FAILURE(iso::CanonicalCode(g), "too large");
}

TEST(InvariantsDeathTest, NominalCellsValidated) {
  ml::AttributeTable t;
  t.AddNominalAttribute("m", {"a", "b"});
  EXPECT_CHECK_FAILURE(t.AddRow({7.0}), "invalid nominal");
}

TEST(InvariantsDeathTest, AttributesBeforeRows) {
  ml::AttributeTable t;
  t.AddNumericAttribute("x");
  t.AddRow({1.0});
  EXPECT_CHECK_FAILURE(t.AddNumericAttribute("y"), "before rows");
}

}  // namespace
}  // namespace tnmine
