#include "synth/kk_generator.h"
#include "synth/planted.h"
#include "synth/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"
#include "graph/algorithms.h"
#include "iso/canonical.h"
#include "iso/vf2.h"

namespace tnmine::synth {
namespace {

TEST(KkGeneratorTest, ProducesRequestedTransactionCount) {
  KkOptions options;
  options.num_transactions = 50;
  options.avg_transaction_edges = 12;
  options.seed = 1;
  const KkResult r = GenerateKkTransactions(options);
  EXPECT_EQ(r.transactions.size(), 50u);
  EXPECT_EQ(r.seed_patterns.size(), options.num_seed_patterns);
}

TEST(KkGeneratorTest, TransactionSizesNearTarget) {
  KkOptions options;
  options.num_transactions = 200;
  options.avg_transaction_edges = 20;
  options.seed = 2;
  const KkResult r = GenerateKkTransactions(options);
  double total = 0;
  for (const auto& t : r.transactions) {
    total += static_cast<double>(t.num_edges());
    EXPECT_GE(t.num_edges(), 1u);
  }
  const double avg = total / 200.0;
  EXPECT_GT(avg, 15.0);
  EXPECT_LT(avg, 30.0);
}

TEST(KkGeneratorTest, SeedPatternsConnectedAndLabeledInRange) {
  KkOptions options;
  options.num_seed_patterns = 15;
  options.num_vertex_labels = 5;
  options.num_edge_labels = 3;
  options.seed = 3;
  const KkResult r = GenerateKkTransactions(options);
  for (const auto& p : r.seed_patterns) {
    EXPECT_TRUE(graph::IsWeaklyConnected(p));
    for (graph::VertexId v = 0; v < p.num_vertices(); ++v) {
      EXPECT_GE(p.vertex_label(v), 0);
      EXPECT_LT(p.vertex_label(v), 5);
    }
    p.ForEachEdge([&](graph::EdgeId e) {
      EXPECT_GE(p.edge(e).label, 0);
      EXPECT_LT(p.edge(e).label, 3);
    });
  }
}

TEST(KkGeneratorTest, SeedPatternsActuallyAppearInTransactions) {
  KkOptions options;
  options.num_transactions = 80;
  options.num_seed_patterns = 5;
  options.avg_pattern_edges = 3;
  options.avg_transaction_edges = 15;
  options.num_vertex_labels = 3;
  options.num_edge_labels = 2;
  options.seed = 4;
  const KkResult r = GenerateKkTransactions(options);
  // Each seed pattern should be contained in a healthy share of the
  // transactions (it is planted repeatedly).
  for (const auto& seed : r.seed_patterns) {
    std::size_t hits = 0;
    for (const auto& t : r.transactions) {
      hits += iso::ContainsSubgraph(seed, t);
    }
    EXPECT_GE(hits, 8u) << seed.DebugString();
  }
}

TEST(KkGeneratorTest, MoreLabelsMeanMoreDistinctEdgeTypes) {
  KkOptions few;
  few.num_transactions = 60;
  few.num_vertex_labels = 2;
  few.seed = 5;
  KkOptions many = few;
  many.num_vertex_labels = 60;
  auto count_types = [](const KkResult& r) {
    std::set<std::tuple<graph::Label, graph::Label, graph::Label>> types;
    for (const auto& t : r.transactions) {
      t.ForEachEdge([&](graph::EdgeId e) {
        types.insert({t.vertex_label(t.edge(e).src),
                      t.vertex_label(t.edge(e).dst), t.edge(e).label});
      });
    }
    return types.size();
  };
  EXPECT_GT(count_types(GenerateKkTransactions(many)),
            2 * count_types(GenerateKkTransactions(few)));
}

// --- Degenerate-parameter contract (see KkOptions): the scenario fuzzer
// feeds this generator arbitrary draws, so no combination may abort.

TEST(KkGeneratorTest, ZeroTransactionsStillDrawsSeedPatterns) {
  KkOptions options;
  options.num_transactions = 0;
  options.num_seed_patterns = 7;
  options.seed = 10;
  const KkResult r = GenerateKkTransactions(options);
  EXPECT_TRUE(r.transactions.empty());
  EXPECT_EQ(r.seed_patterns.size(), 7u);
}

TEST(KkGeneratorTest, EmptySeedPoolFallsBackToRandomEdges) {
  KkOptions options;
  options.num_transactions = 20;
  options.num_seed_patterns = 0;
  options.avg_transaction_edges = 8;
  options.seed = 11;
  const KkResult r = GenerateKkTransactions(options);
  EXPECT_TRUE(r.seed_patterns.empty());
  ASSERT_EQ(r.transactions.size(), 20u);
  for (const auto& t : r.transactions) {
    EXPECT_GE(t.num_edges(), 1u);
    EXPECT_TRUE(t.IsDense());
  }
}

TEST(KkGeneratorTest, LabelCardinalityOneAndBelowIsClamped) {
  for (const int labels : {1, 0, -3}) {
    KkOptions options;
    options.num_transactions = 10;
    options.num_vertex_labels = labels;
    options.num_edge_labels = labels;
    options.seed = 12;
    const KkResult r = GenerateKkTransactions(options);
    ASSERT_EQ(r.transactions.size(), 10u);
    for (const auto& t : r.transactions) {
      for (graph::VertexId v = 0; v < t.num_vertices(); ++v) {
        EXPECT_EQ(t.vertex_label(v), 0);
      }
      t.ForEachEdge([&](graph::EdgeId e) { EXPECT_EQ(t.edge(e).label, 0); });
    }
  }
}

TEST(KkGeneratorTest, AllDegenerateParametersAtOnce) {
  KkOptions options;
  options.num_transactions = 0;
  options.num_seed_patterns = 0;
  options.num_vertex_labels = 0;
  options.num_edge_labels = 0;
  options.avg_transaction_edges = 0;
  options.avg_pattern_edges = 0;
  options.seed = 13;
  const KkResult r = GenerateKkTransactions(options);
  EXPECT_TRUE(r.transactions.empty());
  EXPECT_TRUE(r.seed_patterns.empty());
}

TEST(KkGeneratorTest, TextureKnobsOffPreserveTheDefaultStream) {
  // The scenario knobs must be RNG-inert at their defaults: a
  // default-constructed KkOptions produces the byte-identical stream it
  // always has (the statistical tests above depend on it).
  KkOptions plain;
  plain.num_transactions = 30;
  plain.seed = 14;
  KkOptions with_defaults = plain;
  with_defaults.hub_skew = 0.0;
  with_defaults.seasonality_period = 0;
  with_defaults.disruption_rate = 0.0;
  with_defaults.motif_concentration = 0.0;
  const KkResult a = GenerateKkTransactions(plain);
  const KkResult b = GenerateKkTransactions(with_defaults);
  ASSERT_EQ(a.transactions.size(), b.transactions.size());
  for (std::size_t i = 0; i < a.transactions.size(); ++i) {
    EXPECT_EQ(iso::CanonicalCode(a.transactions[i]),
              iso::CanonicalCode(b.transactions[i]));
  }
}

TEST(KkGeneratorTest, TextureKnobsProduceDenseTransactions) {
  KkOptions options;
  options.num_transactions = 40;
  options.avg_transaction_edges = 10;
  options.hub_skew = 1.2;
  options.seasonality_period = 2;
  options.disruption_rate = 0.5;
  options.motif_concentration = 1.0;
  options.seed = 15;
  const KkResult r = GenerateKkTransactions(options);
  ASSERT_EQ(r.transactions.size(), 40u);
  for (const auto& t : r.transactions) {
    EXPECT_TRUE(t.IsDense());
    EXPECT_GE(t.num_edges(), 1u);
  }
}

TEST(KkGeneratorTest, HubSkewConcentratesDegree) {
  KkOptions uniform;
  uniform.num_transactions = 60;
  uniform.num_seed_patterns = 0;  // pure random-edge transactions
  uniform.avg_transaction_edges = 30;
  uniform.seed = 16;
  KkOptions skewed = uniform;
  skewed.hub_skew = 1.5;
  auto max_degree_share = [](const KkResult& r) {
    double total = 0;
    for (const auto& t : r.transactions) {
      std::vector<std::size_t> degree(t.num_vertices(), 0);
      t.ForEachEdge([&](graph::EdgeId e) {
        degree[t.edge(e).src]++;
        degree[t.edge(e).dst]++;
      });
      std::size_t max_degree = 0;
      for (const std::size_t d : degree) max_degree = std::max(max_degree, d);
      total += static_cast<double>(max_degree) /
               static_cast<double>(2 * t.num_edges());
    }
    return total / static_cast<double>(r.transactions.size());
  };
  EXPECT_GT(max_degree_share(GenerateKkTransactions(skewed)),
            max_degree_share(GenerateKkTransactions(uniform)));
}

TEST(PlantedTest, GroundTruthEmbedded) {
  PlantedOptions options;
  options.num_patterns = 4;
  options.pattern_edges = 3;
  options.instances_per_pattern = 10;
  options.noise_vertices = 30;
  options.noise_edges = 40;
  options.seed = 6;
  const PlantedResult r = GeneratePlantedGraph(options);
  ASSERT_EQ(r.patterns.size(), 4u);
  for (const auto& p : r.patterns) {
    // At least the planted number of embeddings exist.
    EXPECT_GE(iso::CountEmbeddings(p, r.graph, 1), 1u);
  }
}

TEST(PlantedTest, PatternsPairwiseNonIsomorphic) {
  PlantedOptions options;
  options.num_patterns = 6;
  options.seed = 7;
  const PlantedResult r = GeneratePlantedGraph(options);
  std::set<std::string> codes;
  for (const auto& p : r.patterns) {
    EXPECT_TRUE(codes.insert(iso::CanonicalCode(p)).second);
  }
}

TEST(PlantedTest, GraphSizeAccounting) {
  PlantedOptions options;
  options.num_patterns = 2;
  options.pattern_edges = 3;
  options.instances_per_pattern = 5;
  options.noise_vertices = 10;
  options.noise_edges = 20;
  options.seed = 8;
  const PlantedResult r = GeneratePlantedGraph(options);
  std::size_t instance_edges = 0;
  for (const auto& p : r.patterns) {
    instance_edges += p.num_edges() * options.instances_per_pattern;
  }
  EXPECT_EQ(r.graph.num_edges(), instance_edges + options.noise_edges);
}

TEST(PlantedTest, RecallMeasure) {
  PlantedOptions options;
  options.num_patterns = 4;
  options.seed = 9;
  const PlantedResult r = GeneratePlantedGraph(options);
  pattern::PatternRegistry mined;
  // Register two of the four truths.
  for (int i = 0; i < 2; ++i) {
    pattern::FrequentPattern p;
    p.graph = r.patterns[static_cast<std::size_t>(i)];
    p.support = 10;
    mined.InsertOrMerge(std::move(p));
  }
  EXPECT_DOUBLE_EQ(PatternRecall(r.patterns, mined), 0.5);
  EXPECT_DOUBLE_EQ(PatternRecall({}, mined), 0.0);
}

// --- Scenario configs (the fuzz-replay artifact format) -------------------

TEST(ScenarioTest, SerializeParseRoundTripsExactly) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const ScenarioConfig config = DrawScenario(rng);
    const std::string text = SerializeScenario(config);
    ScenarioConfig parsed;
    std::string error;
    ASSERT_TRUE(ParseScenario(text, &parsed, &error)) << error;
    // Byte-identical re-serialization == every field (doubles included)
    // survived the round trip exactly.
    EXPECT_EQ(SerializeScenario(parsed), text);
  }
}

TEST(ScenarioTest, DrawIsDeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(SerializeScenario(DrawScenario(a)),
            SerializeScenario(DrawScenario(b)));
  EXPECT_NE(SerializeScenario(DrawScenario(a)),
            SerializeScenario(DrawScenario(c)));
}

TEST(ScenarioTest, ParseIgnoresSidecarMetadataLines) {
  Rng rng(100);
  const ScenarioConfig config = DrawScenario(rng);
  const std::string text = "oracle: miner_equiv\ndetail: some prose\n" +
                           SerializeScenario(config) + "not a key line\n";
  ScenarioConfig parsed;
  ASSERT_TRUE(ParseScenario(text, &parsed, nullptr));
  EXPECT_EQ(SerializeScenario(parsed), SerializeScenario(config));
}

TEST(ScenarioTest, ParseRejectsMalformedValues) {
  std::string error;
  EXPECT_FALSE(ParseScenario("min_support: -1\n", nullptr, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseScenario("budget_fraction: nan\n", nullptr, nullptr));
  EXPECT_FALSE(ParseScenario("partitioner: metis\n", nullptr, nullptr));
  EXPECT_FALSE(ParseScenario("num_threads: 0\n", nullptr, nullptr));
}

}  // namespace
}  // namespace tnmine::synth
