#include "synth/kk_generator.h"
#include "synth/planted.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.h"
#include "iso/canonical.h"
#include "iso/vf2.h"

namespace tnmine::synth {
namespace {

TEST(KkGeneratorTest, ProducesRequestedTransactionCount) {
  KkOptions options;
  options.num_transactions = 50;
  options.avg_transaction_edges = 12;
  options.seed = 1;
  const KkResult r = GenerateKkTransactions(options);
  EXPECT_EQ(r.transactions.size(), 50u);
  EXPECT_EQ(r.seed_patterns.size(), options.num_seed_patterns);
}

TEST(KkGeneratorTest, TransactionSizesNearTarget) {
  KkOptions options;
  options.num_transactions = 200;
  options.avg_transaction_edges = 20;
  options.seed = 2;
  const KkResult r = GenerateKkTransactions(options);
  double total = 0;
  for (const auto& t : r.transactions) {
    total += static_cast<double>(t.num_edges());
    EXPECT_GE(t.num_edges(), 1u);
  }
  const double avg = total / 200.0;
  EXPECT_GT(avg, 15.0);
  EXPECT_LT(avg, 30.0);
}

TEST(KkGeneratorTest, SeedPatternsConnectedAndLabeledInRange) {
  KkOptions options;
  options.num_seed_patterns = 15;
  options.num_vertex_labels = 5;
  options.num_edge_labels = 3;
  options.seed = 3;
  const KkResult r = GenerateKkTransactions(options);
  for (const auto& p : r.seed_patterns) {
    EXPECT_TRUE(graph::IsWeaklyConnected(p));
    for (graph::VertexId v = 0; v < p.num_vertices(); ++v) {
      EXPECT_GE(p.vertex_label(v), 0);
      EXPECT_LT(p.vertex_label(v), 5);
    }
    p.ForEachEdge([&](graph::EdgeId e) {
      EXPECT_GE(p.edge(e).label, 0);
      EXPECT_LT(p.edge(e).label, 3);
    });
  }
}

TEST(KkGeneratorTest, SeedPatternsActuallyAppearInTransactions) {
  KkOptions options;
  options.num_transactions = 80;
  options.num_seed_patterns = 5;
  options.avg_pattern_edges = 3;
  options.avg_transaction_edges = 15;
  options.num_vertex_labels = 3;
  options.num_edge_labels = 2;
  options.seed = 4;
  const KkResult r = GenerateKkTransactions(options);
  // Each seed pattern should be contained in a healthy share of the
  // transactions (it is planted repeatedly).
  for (const auto& seed : r.seed_patterns) {
    std::size_t hits = 0;
    for (const auto& t : r.transactions) {
      hits += iso::ContainsSubgraph(seed, t);
    }
    EXPECT_GE(hits, 8u) << seed.DebugString();
  }
}

TEST(KkGeneratorTest, MoreLabelsMeanMoreDistinctEdgeTypes) {
  KkOptions few;
  few.num_transactions = 60;
  few.num_vertex_labels = 2;
  few.seed = 5;
  KkOptions many = few;
  many.num_vertex_labels = 60;
  auto count_types = [](const KkResult& r) {
    std::set<std::tuple<graph::Label, graph::Label, graph::Label>> types;
    for (const auto& t : r.transactions) {
      t.ForEachEdge([&](graph::EdgeId e) {
        types.insert({t.vertex_label(t.edge(e).src),
                      t.vertex_label(t.edge(e).dst), t.edge(e).label});
      });
    }
    return types.size();
  };
  EXPECT_GT(count_types(GenerateKkTransactions(many)),
            2 * count_types(GenerateKkTransactions(few)));
}

TEST(PlantedTest, GroundTruthEmbedded) {
  PlantedOptions options;
  options.num_patterns = 4;
  options.pattern_edges = 3;
  options.instances_per_pattern = 10;
  options.noise_vertices = 30;
  options.noise_edges = 40;
  options.seed = 6;
  const PlantedResult r = GeneratePlantedGraph(options);
  ASSERT_EQ(r.patterns.size(), 4u);
  for (const auto& p : r.patterns) {
    // At least the planted number of embeddings exist.
    EXPECT_GE(iso::CountEmbeddings(p, r.graph, 1), 1u);
  }
}

TEST(PlantedTest, PatternsPairwiseNonIsomorphic) {
  PlantedOptions options;
  options.num_patterns = 6;
  options.seed = 7;
  const PlantedResult r = GeneratePlantedGraph(options);
  std::set<std::string> codes;
  for (const auto& p : r.patterns) {
    EXPECT_TRUE(codes.insert(iso::CanonicalCode(p)).second);
  }
}

TEST(PlantedTest, GraphSizeAccounting) {
  PlantedOptions options;
  options.num_patterns = 2;
  options.pattern_edges = 3;
  options.instances_per_pattern = 5;
  options.noise_vertices = 10;
  options.noise_edges = 20;
  options.seed = 8;
  const PlantedResult r = GeneratePlantedGraph(options);
  std::size_t instance_edges = 0;
  for (const auto& p : r.patterns) {
    instance_edges += p.num_edges() * options.instances_per_pattern;
  }
  EXPECT_EQ(r.graph.num_edges(), instance_edges + options.noise_edges);
}

TEST(PlantedTest, RecallMeasure) {
  PlantedOptions options;
  options.num_patterns = 4;
  options.seed = 9;
  const PlantedResult r = GeneratePlantedGraph(options);
  pattern::PatternRegistry mined;
  // Register two of the four truths.
  for (int i = 0; i < 2; ++i) {
    pattern::FrequentPattern p;
    p.graph = r.patterns[static_cast<std::size_t>(i)];
    p.support = 10;
    mined.InsertOrMerge(std::move(p));
  }
  EXPECT_DOUBLE_EQ(PatternRecall(r.patterns, mined), 0.5);
  EXPECT_DOUBLE_EQ(PatternRecall({}, mined), 0.0);
}

}  // namespace
}  // namespace tnmine::synth
